package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/config"
	"repro/internal/crypto"
	"repro/internal/ids"
	"repro/internal/message"
	"repro/internal/mlog"
	"repro/internal/replica"
	"repro/internal/statemachine"
	"repro/internal/storage"
	"repro/internal/transport"
)

type status int

const (
	statusNormal status = iota
	statusViewChange
)

// Options assembles one SeeMoRe replica.
type Options struct {
	// ID is this replica's identity in [0, N).
	ID ids.ReplicaID
	// Cluster is the validated cluster configuration.
	Cluster config.Cluster
	// Suite signs and verifies messages. Use crypto.Ed25519Suite for
	// protocol-faithful runs.
	Suite crypto.Suite
	// Network attaches the replica's endpoint.
	Network transport.Network
	// StateMachine is the replicated service.
	StateMachine statemachine.StateMachine
	// TickInterval overrides the engine tick (default 5ms).
	TickInterval time.Duration
	// LeanCommits makes Lion COMMIT messages carry only the digest
	// instead of attaching µ (an ablation knob: the paper attaches the
	// request "so that if a replica has not received a prepare message
	// ... it can still execute the request"). With lean commits such a
	// replica stays behind until checkpoint-based state transfer.
	LeanCommits bool
	// Storage attaches the durable storage subsystem (WAL + snapshot
	// store). When non-nil the replica journals its protocol state,
	// recovers from the store during construction, and takes ownership:
	// Stop flushes and closes it. Nil keeps the legacy fully-in-memory
	// replica.
	Storage storage.Store
	// Clock is the time source for every protocol timer — batch flush
	// deadlines, per-slot liveness timers, view-change deadlines, lease
	// validity, state-request throttles. Nil uses the real clock; the
	// deterministic simulation injects a virtual (optionally skewed)
	// clock.
	Clock clock.Clock
	// LeaseSlackForTesting deliberately weakens lease safety by serving
	// leased reads up to this long past the lease's true expiry. It
	// exists ONLY to validate the simulation harness: the linearizability
	// checker must catch the stale reads this bug produces. Production
	// code must leave it zero.
	LeaseSlackForTesting time.Duration
}

// Replica is one SeeMoRe node. All protocol state is confined to the
// engine goroutine; public methods are safe to call from anywhere.
type Replica struct {
	eng    *replica.Engine
	mb     ids.Membership
	timing config.Timing
	clk    clock.Clock

	mode   ids.Mode
	view   ids.View
	status status

	log  *mlog.Log
	exec *replica.Executor

	// jr journals protocol state to durable storage (no-op journal when
	// durability is off).
	jr *replica.Journal

	// nextSeq is the next sequence number to assign (primary role).
	nextSeq uint64

	// pending tracks slots with an accepted proposal that have not
	// committed yet, one liveness timer per slot; at the primary its
	// occupancy is the pipeline window.
	pending *replica.Pending

	// pipe bounds the primary's in-flight proposal window (zero value:
	// legacy unbounded admission, see config.Pipelining).
	pipe config.Pipelining

	// vc holds view-change progress.
	vc viewChangeState

	// pendingStable holds checkpoint certificates that arrived before
	// local execution reached them: seq → evidence.
	pendingStable map[uint64]*stableEvidence

	// activeView is the latest view this replica saw activated (a
	// NEW-VIEW processed, or view 0). Dog view changes report it.
	activeView ids.View

	// lastNewView retains the collector's signed NEW-VIEW so it can be
	// re-sent to peers observed still operating in an older view — a
	// deposed primary partitioned through the change would otherwise
	// never learn the view moved on. nvResent throttles per peer.
	lastNewView *message.Message
	nvResent    map[ids.ReplicaID]time.Time

	// stateRequested throttles state-transfer requests. stallExec and
	// stallSince detect an executor that stopped advancing with stable
	// checkpoint evidence ahead of it (see maybeRequestState).
	stateRequested time.Time
	stallExec      uint64
	stallSince     time.Time

	// queue buffers client requests that arrive while a view change is
	// in progress on the primary.
	queue []*message.Request

	// batcher accumulates requests at the primary until the batch fills
	// or BatchTimeout expires (see replica.Batcher).
	batcher *replica.Batcher

	// inFlight dedups requests the primary has proposed but not yet seen
	// executed, keyed by (client, timestamp). Without it a client's
	// retransmission broadcast — relayed to the primary by every backup —
	// would occupy one slot per relay.
	inFlight map[inFlightKey]uint64

	// leanCommits strips µ from Lion commits (see Options.LeanCommits).
	leanCommits bool

	// leases is the leader-lease knob; lease holds the primary-side
	// bookkeeping and parked buffers leased reads awaiting the executor
	// watermark (see read.go). leaseSlack is the deliberate safety bug
	// of Options.LeaseSlackForTesting.
	leases     config.Leases
	lease      leaseState
	parked     []parkedRead
	leaseSlack time.Duration

	// probe observes protocol events (tests and the bench harness use it
	// to watch commits and view changes). Atomic so SetProbe may be
	// called while the engine runs.
	probe atomic.Pointer[Probe]
}

// Probe receives protocol event callbacks. Fields may be nil. Callbacks
// run on the engine goroutine: they must not block and must not call
// back into the replica.
type Probe struct {
	// OnExecute fires after a request is applied to the state machine.
	OnExecute func(seq uint64, req *message.Request, result []byte)
	// OnViewChange fires when the replica enters a new view.
	OnViewChange func(view ids.View, mode ids.Mode)
	// OnCheckpointStable fires when a checkpoint stabilizes.
	OnCheckpointStable func(seq uint64)
}

type stableEvidence struct {
	digest crypto.Digest
	proof  []message.Signed
}

type inFlightKey struct {
	client ids.ClientID
	ts     uint64
}

// NewReplica builds a SeeMoRe replica. Call Start to begin processing.
func NewReplica(opts Options) (*Replica, error) {
	mb := opts.Cluster.Membership
	if !mb.Contains(opts.ID) {
		return nil, fmt.Errorf("core: replica %d not in %v", opts.ID, mb)
	}
	if err := opts.Cluster.Timing.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Cluster.Batching.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Cluster.Pipelining.Validate(); err != nil {
		return nil, err
	}
	if err := opts.Cluster.Leases.Validate(opts.Cluster.Timing); err != nil {
		return nil, err
	}
	clk := clock.OrReal(opts.Clock)
	r := &Replica{
		mb:            mb,
		timing:        opts.Cluster.Timing,
		clk:           clk,
		batcher:       replica.NewBatcher(opts.Cluster.Batching, clk),
		pipe:          opts.Cluster.Pipelining,
		leanCommits:   opts.LeanCommits,
		leaseSlack:    opts.LeaseSlackForTesting,
		mode:          opts.Cluster.InitialMode,
		log:           mlog.New(opts.Cluster.Timing.HighWaterMarkLag),
		exec:          replica.NewExecutor(opts.StateMachine, opts.Cluster.Timing.CheckpointPeriod),
		nextSeq:       1,
		pending:       replica.NewPending(),
		pendingStable: make(map[uint64]*stableEvidence),
		inFlight:      make(map[inFlightKey]uint64),
		leases:        opts.Cluster.Leases,
		lease:         leaseState{propose: make(map[uint64]time.Time)},
		nvResent:      make(map[ids.ReplicaID]time.Time),
	}
	r.vc.reset()
	r.jr = replica.NewJournal(opts.Storage)
	r.eng = replica.NewEngine(replica.Config{
		ID:       opts.ID,
		Suite:    opts.Suite,
		Endpoint: opts.Network.Endpoint(transport.ReplicaAddr(opts.ID)),
		// Timeout flushes run on ticks, so the tick must not exceed
		// BatchTimeout or the flush deadline silently degrades to the
		// tick interval.
		TickInterval: r.batcher.TickInterval(opts.TickInterval),
		Clock:        clk,
	})
	if opts.Storage != nil {
		// Crash-restart recovery: replay the journal into the message
		// log and executor before the engine starts processing.
		if err := r.recoverFromStorage(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// SetProbe installs event callbacks; safe to call at any time, including
// while the replica runs.
func (r *Replica) SetProbe(p Probe) { r.probe.Store(&p) }

// loadProbe returns the current probe (never nil).
func (r *Replica) loadProbe() *Probe {
	if p := r.probe.Load(); p != nil {
		return p
	}
	return &Probe{}
}

// Start launches the replica.
func (r *Replica) Start() { r.eng.Start(r) }

// StepEnvelope synchronously feeds one inbound frame through the
// engine's validation path on the caller's goroutine — the
// deterministic simulation's delivery entry point. Never mix with
// Start (see replica.Engine.StepEnvelope for the threading contract).
func (r *Replica) StepEnvelope(env transport.Envelope) { r.eng.StepEnvelope(r, env) }

// StepTick synchronously fires one tick at the given time; the
// simulation drives every protocol timer through it.
func (r *Replica) StepTick(now time.Time) { r.eng.StepTick(r, now) }

// Stop terminates the replica, then flushes and closes the attached
// durable store (if any).
func (r *Replica) Stop() {
	r.eng.Stop()
	r.jr.Close()
}

// Crash fail-stops the replica (private-cloud crash injection).
func (r *Replica) Crash() { r.eng.Crash() }

// Recover resumes a crashed replica.
func (r *Replica) Recover() { r.eng.Recover() }

// ID returns the replica's identity.
func (r *Replica) ID() ids.ReplicaID { return r.eng.ID() }

// The following inspection accessors read engine-confined state and are
// only safe after Stop has returned (tests, post-mortem assertions) or
// from within Probe callbacks.

// View returns the replica's current view.
func (r *Replica) View() ids.View { return r.view }

// Mode returns the replica's current mode.
func (r *Replica) Mode() ids.Mode { return r.mode }

// LastExecuted returns the execution cursor.
func (r *Replica) LastExecuted() uint64 { return r.exec.LastExecuted() }

// StableCheckpoint returns the sequence number of the last stable
// checkpoint.
func (r *Replica) StableCheckpoint() uint64 { return r.log.Low() }

// LiveLogSlots returns the number of un-collected log slots (garbage
// collection assertions).
func (r *Replica) LiveLogSlots() int { return r.log.Len() }

// isPrimary reports whether this replica is the primary of its current
// view in its current mode.
func (r *Replica) isPrimary() bool {
	return r.mb.Primary(r.mode, r.view) == r.eng.ID()
}

// isProxy reports whether this replica is a proxy of its current view
// (Dog and Peacock).
func (r *Replica) isProxy() bool {
	return r.mb.IsProxy(r.mode, r.view, r.eng.ID())
}

// trustedSelf reports whether this replica sits in the private cloud.
func (r *Replica) trustedSelf() bool { return r.mb.IsTrusted(r.eng.ID()) }

// HandleMessage implements replica.Handler: the single dispatch point.
func (r *Replica) HandleMessage(m *message.Message) {
	// Agreement traffic from an older view marks a peer that missed the
	// NEW-VIEW multicast (partitioned through the change); hand it the
	// stored, independently verifiable NEW-VIEW so it can rejoin.
	switch m.Kind {
	case message.KindPrepare, message.KindPrePrepare, message.KindAccept,
		message.KindCommit, message.KindInform:
		if m.View < r.view && r.mb.Contains(m.From) {
			r.maybeResendNewView(m.From, m.View)
		}
	case message.KindViewChange:
		// A VIEW-CHANGE whose sender last activated an older view marks
		// the same laggard, suspecting its way through views the rest of
		// the cluster already left behind.
		if m.ActiveView < r.view && r.mb.Contains(m.From) {
			r.maybeResendNewView(m.From, m.ActiveView)
		}
	}
	switch m.Kind {
	case message.KindRequest:
		r.onRequest(m.Request)
	case message.KindPrepare:
		r.onPrepare(m)
	case message.KindPrePrepare:
		r.onPrePrepare(m)
	case message.KindAccept:
		r.onAccept(m)
	case message.KindCommit:
		r.onCommit(m)
	case message.KindInform:
		r.onInform(m)
	case message.KindCheckpoint:
		r.onCheckpoint(m)
	case message.KindViewChange:
		r.onViewChange(m)
	case message.KindNewView:
		r.onNewView(m)
	case message.KindModeChange:
		r.onModeChange(m)
	case message.KindStateRequest:
		r.onStateRequest(m)
	case message.KindStateReply:
		r.onStateReply(m)
	case message.KindRead:
		r.onRead(m)
	}
}

// HandleTick implements replica.Handler: timeout processing.
func (r *Replica) HandleTick(now time.Time) {
	// A partial batch older than BatchTimeout is flushed so a lull in
	// client traffic cannot strand buffered requests. The pipelined
	// pump applies the same deadline, additionally bounded by window
	// room.
	if r.status == statusNormal {
		if r.pipe.Enabled() {
			r.pump(now)
		} else if r.batcher.Due(now) {
			r.proposeBatch(r.batcher.Take())
		}
	}
	// A replica that knows it is behind (parked checkpoint evidence it
	// cannot reach) retries its state-transfer request on the tick;
	// maybeRequestState throttles to one request per τ. Without the
	// retry a single lost STATE-REPLY — or a throttled request during a
	// traffic lull — would strand a recovering replica until the next
	// checkpoint happens to arrive.
	if r.status == statusNormal {
		r.maybeRequestState()
	}
	// A parked leased read whose lease lapsed mid-wait must not starve:
	// re-route it through consensus on the tick (no-op when nothing is
	// parked or the executor is still behind a live lease's watermark).
	r.drainParkedReads()
	// Any single slot prepared-but-uncommitted past τ: suspect the
	// primary and start a view change (Section 5.1, View Changes). The
	// timers are per slot, so a stalled slot n is suspected on schedule
	// even while newer slots keep committing around it.
	if r.status == statusNormal {
		if _, ok := r.pending.Expired(now, r.timing.ViewChange); ok {
			r.startViewChange(r.view+1, r.mode)
		}
	}
	// A view change that stalls either escalates or backs off. If m+1
	// replicas demand a newer view, at least one correct peer shares the
	// suspicion and the collector may also be faulty: escalate to the
	// next view. A lone suspicion that nobody joined (a local timing
	// hiccup while the cluster is healthy) instead falls back to normal
	// operation in the current view — escalating forever would wedge
	// this replica while its peers make progress without it.
	if r.status == statusViewChange && !r.vc.deadline.IsZero() && now.After(r.vc.deadline) {
		joined := 0
		for v, votes := range r.vc.votes {
			if v > r.view && len(votes) > joined {
				joined = len(votes)
			}
		}
		if joined >= r.mb.M()+1 {
			r.startViewChange(r.vc.target+1, r.vc.targetMode)
		} else {
			r.status = statusNormal
			r.vc.deadline = time.Time{}
			r.vc.target = 0
			r.resetPending()
			// Requests buffered while the abandoned suspicion ran must
			// not stay stranded: re-propose them (primary) or drop them
			// for the client's retransmission to recover (backup). The
			// resulting proposals also tell peers in a newer view that
			// this replica fell behind, triggering a NEW-VIEW resend.
			r.drainQueue()
		}
	}
}

// markPending starts the per-slot liveness timer for a slot with an
// accepted proposal.
func (r *Replica) markPending(seq uint64) { r.pending.Mark(seq, r.clk.Now()) }

// clearPending stops the timer for a committed slot. Other slots keep
// their own timers — per-slot arming supersedes the old single restart-
// on-commit timer, under which a fast slot n+1 committing masked a
// stalled slot n indefinitely.
func (r *Replica) clearPending(seq uint64) { r.pending.Clear(seq) }

// resetPending drops all liveness timers (used on view entry).
func (r *Replica) resetPending() { r.pending.Reset() }

// executeReady drains committed slots into the state machine and emits
// replies according to the current mode's reply policy.
func (r *Replica) executeReady() {
	mode := r.mode
	view := r.view
	executed := r.exec.ExecuteReady(r.log, func(seq uint64, req *message.Request, result []byte) {
		delete(r.inFlight, inFlightKey{client: req.Client, ts: req.Timestamp})
		r.replyToClient(mode, view, req, result)
		if p := r.loadProbe(); p.OnExecute != nil {
			p.OnExecute(seq, req, result)
		}
	})
	if executed > 0 {
		// Progress clears the relayed-request sentinel: the cluster is
		// alive, so the relayed request will get through or be retried.
		r.clearPending(relaySentinel)
		r.maybeCheckpoint()
		r.drainPendingStable()
		r.drainParkedReads()
	}
	// Commits (including out-of-order ones that could not execute yet)
	// free pipeline window room: refill it from the backlog.
	r.drainBlocked()
	r.pump(r.clk.Now())
}

// relaySentinel is the pseudo-slot used to arm the suspicion timer when
// a backup relays a client request to the primary.
const relaySentinel = replica.RelaySentinel

// replyToClient sends a REPLY if this replica's role replies in the
// given mode: the primary in Lion; the proxies in Dog and Peacock
// (Sections 5.1–5.3).
func (r *Replica) replyToClient(mode ids.Mode, view ids.View, req *message.Request, result []byte) {
	if req.Client < 0 {
		return
	}
	var shouldReply bool
	switch mode {
	case ids.Lion:
		shouldReply = r.mb.Primary(mode, view) == r.eng.ID()
	default:
		shouldReply = r.mb.IsProxy(mode, view, r.eng.ID())
	}
	if !shouldReply {
		return
	}
	r.sendReply(mode, view, req, result)
}

func (r *Replica) sendReply(mode ids.Mode, view ids.View, req *message.Request, result []byte) {
	rep := &message.Message{
		Kind:      message.KindReply,
		View:      view,
		Mode:      mode,
		Timestamp: req.Timestamp,
		Client:    req.Client,
		Result:    result,
		// Every reply advertises the executed prefix so clients can
		// anchor the staleness bound and monotonicity of later
		// coordination-free reads (read.go).
		Watermark: r.exec.LastExecuted(),
		Epoch:     r.exec.PlacementEpoch(),
	}
	r.eng.Sign(rep)
	r.eng.SendClient(req.Client, rep)
}

// onRequest handles a client REQUEST: primaries order it; backups that
// already executed it re-send the cached reply; otherwise the request is
// relayed to the primary and a liveness timer starts so a dead primary
// is eventually suspected (Section 5.1's client-retransmission path).
func (r *Replica) onRequest(req *message.Request) {
	if req == nil || req.Client < 0 || !r.eng.VerifyRequest(req) {
		return
	}
	// Retransmission of an executed request: re-send the cached reply
	// regardless of role (the client is asking everyone because it timed
	// out).
	if cached, ok := r.exec.CachedReply(req); ok {
		r.sendReply(r.mode, r.view, req, cached)
		return
	}
	if !r.exec.Fresh(req) {
		return // older than the client's last executed request
	}
	if r.status != statusNormal {
		if r.trustedSelf() {
			r.queue = append(r.queue, req)
		}
		return
	}
	if r.isPrimary() {
		r.admitRequest(req)
		return
	}
	// Not the primary: relay and arm the suspicion timer keyed on a
	// pseudo-slot so a silent primary cannot stall this client forever.
	fwd := &message.Message{Kind: message.KindRequest, Request: req}
	r.eng.Sign(fwd)
	r.eng.Send(r.mb.Primary(r.mode, r.view), fwd)
	r.markPending(relaySentinel)
}

// admitRequest is the primary's intake. Pipelined configurations buffer
// the request and let pump decide how much of the backlog fits the
// proposal window. Otherwise, unbatched configurations propose
// immediately (the legacy single-request slot) and batched ones
// accumulate until BatchSize requests are buffered or BatchTimeout
// expires (HandleTick flushes stragglers).
func (r *Replica) admitRequest(req *message.Request) {
	if r.pipe.Enabled() {
		key := inFlightKey{client: req.Client, ts: req.Timestamp}
		if _, dup := r.inFlight[key]; dup {
			return // already ordered; the commit is in flight
		}
		r.batcher.Add(req)
		r.pump(r.clk.Now())
		return
	}
	if !r.batcher.Enabled() {
		r.proposeBatch([]*message.Request{req})
		return
	}
	key := inFlightKey{client: req.Client, ts: req.Timestamp}
	if _, dup := r.inFlight[key]; dup {
		return // already ordered; the commit is in flight
	}
	if r.batcher.Add(req) {
		r.proposeBatch(r.batcher.Take())
	}
}

// pump proposes buffered batches while the pipeline window has room
// (see replica.Pump). It is a no-op unless this replica is a pipelined
// primary in normal operation.
func (r *Replica) pump(now time.Time) {
	if !r.pipe.Enabled() || r.status != statusNormal || !r.isPrimary() {
		return
	}
	replica.Pump(r.pipe.Depth, r.pending, r.batcher, now, r.proposeBatch)
}

// drainBlocked re-admits requests that proposeBatch parked in the queue
// because the log window was full, once a stable checkpoint has moved
// the window forward. Pipelined primaries only — the legacy path keeps
// relying on client retransmission, unchanged.
func (r *Replica) drainBlocked() {
	if !r.pipe.Enabled() || r.status != statusNormal || !r.isPrimary() ||
		len(r.queue) == 0 || !r.log.InWindow(r.nextSeq) {
		return
	}
	q := r.queue
	r.queue = nil
	for _, req := range q {
		if r.exec.Fresh(req) {
			r.admitRequest(req)
		}
	}
}

// proposeBatch assigns the next sequence number to a request set and
// starts the mode-specific agreement (the primary's half of Algorithms 1
// and 2, or PBFT pre-prepare in Peacock). A single-request set produces
// a slot byte-identical to the pre-batching protocol.
func (r *Replica) proposeBatch(reqs []*message.Request) {
	// Drop requests that got ordered while the batch was buffering.
	kept := make([]*message.Request, 0, len(reqs))
	for _, req := range reqs {
		key := inFlightKey{client: req.Client, ts: req.Timestamp}
		if _, dup := r.inFlight[key]; dup {
			continue // already ordered; the commit is in flight
		}
		kept = append(kept, req)
	}
	if len(kept) == 0 {
		return
	}
	if !r.log.InWindow(r.nextSeq) {
		// The window is full: the primary must wait for a checkpoint to
		// stabilize. Buffer the requests.
		r.queue = append(r.queue, kept...)
		return
	}
	seq := r.nextSeq
	r.nextSeq++
	r.leaseRecordPropose(seq)

	kind := message.KindPrepare
	if r.mode == ids.Peacock {
		kind = message.KindPrePrepare
	}
	prop := &message.Signed{
		Kind:   kind,
		View:   r.view,
		Seq:    seq,
		Digest: message.BatchDigest(kept),
	}
	prop.SetRequests(kept)
	r.eng.SignRecord(prop)

	entry := r.log.Entry(seq)
	if entry == nil {
		return // cannot happen: InWindow checked above
	}
	if err := entry.SetProposal(prop); err != nil {
		return
	}
	r.markPending(seq)
	// Journal before multicasting: a primary must never propose a slot
	// its recovered self would not remember assigning.
	r.jr.Proposal(prop)

	wire := &message.Message{
		Kind:   kind,
		View:   r.view,
		Seq:    seq,
		Digest: prop.Digest,
		Sig:    prop.Sig,
	}
	wire.SetRequests(kept)
	wire.From = r.eng.ID()
	for _, req := range kept {
		r.inFlight[inFlightKey{client: req.Client, ts: req.Timestamp}] = seq
	}
	// The primary's proposal is broadcast to every replica in all three
	// modes (Lion: Algorithm 1; Dog: Algorithm 2; Peacock: the paper's
	// first modification to PBFT).
	r.eng.Multicast(r.mb.All(), wire)

	switch r.mode {
	case ids.Lion:
		// The primary counts itself toward the 2m+c+1 accept quorum.
		entry.AddVote(message.KindAccept, r.view, r.eng.ID(), prop.Digest)
	case ids.Dog:
		// The trusted Dog primary is not a proxy; proxies run the accept
		// round among themselves.
	case ids.Peacock:
		// The Peacock primary is a proxy: its pre-prepare stands in for
		// its prepare vote.
		entry.AddVote(message.KindPrepare, r.view, r.eng.ID(), prop.Digest)
	}
}

// drainQueue re-proposes requests buffered during a view change; the new
// primary calls it after entering the view. An unflushed batch from the
// previous view joins the queue first so no admitted request is lost.
func (r *Replica) drainQueue() {
	if b := r.batcher.Take(); len(b) > 0 {
		r.queue = append(b, r.queue...)
	}
	if !r.isPrimary() {
		r.queue = nil
		return
	}
	q := r.queue
	r.queue = nil
	for _, req := range q {
		if r.exec.Fresh(req) {
			r.admitRequest(req)
		}
	}
	if r.pipe.Enabled() {
		// The re-admitted backlog refills the whole in-flight window;
		// the rest stays buffered and follows as slots commit.
		r.pump(r.clk.Now())
		return
	}
	r.proposeBatch(r.batcher.Take())
}
