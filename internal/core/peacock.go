package core

import (
	"repro/internal/ids"
	"repro/internal/message"
	"repro/internal/mlog"
)

// The Peacock mode (Section 5.3): PBFT among the 3m+1 public-cloud
// proxies with two modifications — the primary's PRE-PREPARE goes to all
// nodes (not just proxies), and committed slots are INFORMed to the
// passive nodes, which execute after m+1 matching informs. View changes
// are driven by a trusted transferer (see viewchange.go).

// onPrePrepare handles the untrusted primary's 〈〈PRE-PREPARE,v,n,d〉σp, µ〉.
// It is only meaningful in Peacock mode.
func (r *Replica) onPrePrepare(m *message.Message) {
	if r.mode != ids.Peacock {
		return
	}
	if r.status != statusNormal || m.View != r.view {
		return
	}
	if m.From != r.mb.Primary(ids.Peacock, r.view) || m.From == r.eng.ID() {
		return
	}
	s := signedFromWire(m)
	if !r.eng.VerifyRecord(s) || !r.validProposalPayload(m) {
		return
	}
	entry := r.log.Entry(m.Seq)
	if entry == nil {
		return
	}
	// SetProposal rejects a conflicting digest in the same view — an
	// equivocating Byzantine primary gets one proposal per slot here and
	// will be caught by the prepare round (other proxies saw the other
	// half of the equivocation and won't vote for ours).
	if err := entry.SetProposal(s); err != nil {
		return
	}
	r.jr.Proposal(s)
	if !r.isProxy() {
		return // passive nodes keep µ for later execution on informs
	}
	r.markPending(m.Seq)

	// Prepare vote to the other proxies.
	prep := &message.Signed{
		Kind:   message.KindPrepare,
		View:   r.view,
		Seq:    m.Seq,
		Digest: m.Digest,
	}
	r.eng.SignRecord(prep)
	r.jr.Vote(prep)
	entry.AddVoteCert(prep)
	// The primary's pre-prepare counts as its prepare vote (standard
	// PBFT accounting).
	entry.AddVote(message.KindPrepare, r.view, m.From, m.Digest)
	r.eng.Multicast(r.mb.Proxies(ids.Peacock, r.view), wireFromSigned(prep))
	r.peacockMaybePrepared(entry)
}

// peacockOnPrepareVote handles proxy PREPARE votes (KindPrepare while in
// Peacock mode).
func (r *Replica) peacockOnPrepareVote(m *message.Message) {
	if r.status != statusNormal || m.View != r.view || !r.isProxy() {
		return
	}
	if !r.mb.IsProxy(ids.Peacock, r.view, m.From) || m.From == r.eng.ID() {
		return
	}
	s := signedFromWire(m)
	if !r.eng.VerifyRecord(s) {
		return
	}
	entry := r.log.Entry(m.Seq)
	if entry == nil {
		return
	}
	// Keep the full signed vote: 2m of these form the prepared
	// certificate a view change must present (see viewchange.go).
	entry.AddVoteCert(s)
	r.peacockMaybePrepared(entry)
}

// peacockMaybePrepared fires the commit phase once the slot is prepared:
// a logged pre-prepare plus 2m+1 prepare voices (pre-prepare standing in
// for the primary's, own vote included).
func (r *Replica) peacockMaybePrepared(entry *mlog.Entry) {
	prop := entry.Proposal()
	if prop == nil || prop.View != r.view {
		return
	}
	d := prop.Digest
	if entry.VoteCount(message.KindPrepare, r.view, d) < r.mb.AgreementQuorum(ids.Peacock) {
		return
	}
	if r.hasOwnVote(entry, message.KindCommit, r.view, d) {
		return // commit vote already sent
	}
	com := &message.Signed{
		Kind:   message.KindCommit,
		View:   r.view,
		Seq:    entry.Seq(),
		Digest: d,
	}
	r.eng.SignRecord(com)
	r.jr.Vote(com)
	entry.AddVoteCert(com)
	r.eng.Multicast(r.mb.Proxies(ids.Peacock, r.view), wireFromSigned(com))
	r.peacockMaybeCommitted(entry)
}

// peacockOnCommitVote handles proxy COMMIT votes.
func (r *Replica) peacockOnCommitVote(m *message.Message) {
	if r.status != statusNormal || m.View != r.view || !r.isProxy() {
		return
	}
	if !r.mb.IsProxy(ids.Peacock, r.view, m.From) || m.From == r.eng.ID() {
		return
	}
	s := signedFromWire(m)
	if !r.eng.VerifyRecord(s) {
		return
	}
	entry := r.log.Entry(m.Seq)
	if entry == nil {
		return
	}
	entry.AddVoteCert(s)
	r.peacockMaybePrepared(entry) // commit votes can close the prepare gap first
	r.peacockMaybeCommitted(entry)
}

// peacockMaybeCommitted executes once committed-local holds: prepared
// plus 2m+1 commit voices.
func (r *Replica) peacockMaybeCommitted(entry *mlog.Entry) {
	if entry.Committed() {
		return
	}
	prop := entry.Proposal()
	if prop == nil || prop.View != r.view {
		return
	}
	d := prop.Digest
	q := r.mb.AgreementQuorum(ids.Peacock)
	if entry.VoteCount(message.KindPrepare, r.view, d) < q ||
		entry.VoteCount(message.KindCommit, r.view, d) < q {
		return
	}
	entry.MarkCommitted()
	r.jr.Commit(entry.Seq(), r.view, d, nil)
	r.clearPending(entry.Seq())

	// Second Peacock modification: INFORM the passive nodes.
	inform := &message.Signed{
		Kind:   message.KindInform,
		View:   r.view,
		Seq:    entry.Seq(),
		Digest: d,
	}
	r.eng.SignRecord(inform)
	r.eng.Multicast(r.nonParticipants(r.view), wireFromSigned(inform))

	r.executeReady() // proxies reply inside the execution hook
}

// peacockOnInform: passive nodes execute after m+1 matching INFORMs from
// distinct proxies (Section 5.3) provided they hold the matching
// pre-prepare (broadcast to all) for the request body.
func (r *Replica) peacockOnInform(m *message.Message) {
	if r.status != statusNormal || m.View != r.view || r.isProxy() {
		return
	}
	if !r.mb.IsProxy(ids.Peacock, r.view, m.From) {
		return
	}
	s := signedFromWire(m)
	if !r.eng.VerifyRecord(s) {
		return
	}
	entry := r.log.Entry(m.Seq)
	if entry == nil || entry.Committed() {
		return
	}
	entry.AddVote(message.KindInform, r.view, m.From, m.Digest)
	prop := entry.Proposal()
	if prop == nil || prop.Digest != m.Digest {
		return
	}
	if entry.VoteCount(message.KindInform, r.view, m.Digest) >= r.mb.InformQuorum(false) {
		entry.MarkCommitted()
		r.jr.Commit(m.Seq, r.view, m.Digest, nil)
		r.clearPending(m.Seq)
		r.executeReady()
	}
}
