package core

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/config"
	"repro/internal/crypto"
	"repro/internal/ids"
	"repro/internal/statemachine"
	"repro/internal/transport"
)

// harness assembles an in-process SeeMoRe cluster over a simulated
// network for the integration tests.
type harness struct {
	t        *testing.T
	mb       ids.Membership
	cluster  config.Cluster
	suite    *crypto.Ed25519Suite
	net      *transport.SimNetwork
	replicas []*Replica
	kvs      []*statemachine.KVStore
	stopped  bool
}

func fastTiming() config.Timing {
	return config.Timing{
		ViewChange:       100 * time.Millisecond,
		ClientRetry:      150 * time.Millisecond,
		CheckpointPeriod: 16,
		HighWaterMarkLag: 256,
	}
}

func newHarness(t *testing.T, mb ids.Membership, mode ids.Mode, seed int64) *harness {
	t.Helper()
	cl, err := config.NewCluster(mb, mode, fastTiming())
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		t:       t,
		mb:      mb,
		cluster: cl,
		suite:   crypto.NewEd25519Suite(seed, mb.N(), 64),
		net:     transport.NewSimNetwork(transport.LAN(mb.S(), seed)),
	}
	for _, id := range mb.All() {
		kv := statemachine.NewKVStore()
		r, err := NewReplica(Options{
			ID:           id,
			Cluster:      cl,
			Suite:        h.suite,
			Network:      h.net,
			StateMachine: kv,
			TickInterval: 2 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		h.replicas = append(h.replicas, r)
		h.kvs = append(h.kvs, kv)
	}
	for _, r := range h.replicas {
		r.Start()
	}
	t.Cleanup(h.stop)
	return h
}

func (h *harness) stop() {
	if h.stopped {
		return
	}
	h.stopped = true
	for _, r := range h.replicas {
		r.Stop()
	}
	h.net.Close()
}

func (h *harness) client(id ids.ClientID) *client.Client {
	policy := client.NewSeeMoRePolicy(h.mb, h.cluster.InitialMode)
	return client.New(id, h.suite, h.net, policy, h.cluster.Timing)
}

// mustPut runs a PUT through the cluster and fails the test on error.
func (h *harness) mustPut(c *client.Client, key, value string) {
	h.t.Helper()
	res, err := c.Invoke(statemachine.EncodePut(key, []byte(value)))
	if err != nil {
		h.t.Fatalf("put %s=%s: %v", key, value, err)
	}
	if st, _ := statemachine.DecodeResult(res); st != statemachine.KVOK {
		h.t.Fatalf("put %s=%s: status %d", key, value, st)
	}
}

func (h *harness) mustGet(c *client.Client, key, want string) {
	h.t.Helper()
	res, err := c.Invoke(statemachine.EncodeGet(key))
	if err != nil {
		h.t.Fatalf("get %s: %v", key, err)
	}
	st, v := statemachine.DecodeResult(res)
	if st != statemachine.KVOK || string(v) != want {
		h.t.Fatalf("get %s: status %d value %q, want %q", key, st, v, want)
	}
}

// waitConverged polls until every listed replica has executed at least n
// requests, then returns. Uses probe-free polling via LastExecuted; the
// engine is still running, so this is technically racy reads — instead
// we wait on execution counts published through probes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.After(timeout)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// verifyConvergence stops the cluster and asserts every non-crashed
// replica holds an identical state machine.
func (h *harness) verifyConvergence(skip map[ids.ReplicaID]bool) {
	h.t.Helper()
	// Give in-flight commits a moment to land everywhere.
	time.Sleep(150 * time.Millisecond)
	h.stop()
	var refID ids.ReplicaID = -1
	var ref []byte
	for i, kv := range h.kvs {
		id := h.replicas[i].ID()
		if skip[id] {
			continue
		}
		snap := kv.Snapshot()
		if ref == nil {
			ref = snap
			refID = id
			continue
		}
		if !bytes.Equal(snap, ref) {
			h.t.Fatalf("replica %d state diverges from replica %d", id, refID)
		}
	}
}

func baseMembership() ids.Membership { return ids.MustMembership(2, 4, 1, 1) }

func TestLionHappyPath(t *testing.T) {
	h := newHarness(t, baseMembership(), ids.Lion, 1)
	c := h.client(0)
	for i := 0; i < 20; i++ {
		h.mustPut(c, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	h.mustGet(c, "k7", "v7")
	h.verifyConvergence(nil)
}

func TestDogHappyPath(t *testing.T) {
	h := newHarness(t, baseMembership(), ids.Dog, 2)
	c := h.client(0)
	for i := 0; i < 20; i++ {
		h.mustPut(c, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	h.mustGet(c, "k3", "v3")
	h.verifyConvergence(nil)
}

func TestPeacockHappyPath(t *testing.T) {
	h := newHarness(t, baseMembership(), ids.Peacock, 3)
	c := h.client(0)
	for i := 0; i < 20; i++ {
		h.mustPut(c, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	h.mustGet(c, "k9", "v9")
	h.verifyConvergence(nil)
}

func TestLionMultipleClients(t *testing.T) {
	h := newHarness(t, baseMembership(), ids.Lion, 4)
	const clients = 4
	var wg sync.WaitGroup
	for cid := 0; cid < clients; cid++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			c := h.client(ids.ClientID(cid))
			for i := 0; i < 10; i++ {
				key := fmt.Sprintf("c%d-k%d", cid, i)
				res, err := c.Invoke(statemachine.EncodePut(key, []byte("v")))
				if err != nil {
					t.Errorf("client %d put %d: %v", cid, i, err)
					return
				}
				if st, _ := statemachine.DecodeResult(res); st != statemachine.KVOK {
					t.Errorf("client %d put %d: status %d", cid, i, st)
					return
				}
			}
		}(cid)
	}
	wg.Wait()
	h.verifyConvergence(nil)
	// 40 distinct keys must exist on every replica.
	if h.kvs[0].Len() != clients*10 {
		t.Fatalf("replica 0 has %d keys, want %d", h.kvs[0].Len(), clients*10)
	}
}

func TestLionBackupCrashTolerated(t *testing.T) {
	h := newHarness(t, baseMembership(), ids.Lion, 5)
	// Crash the one tolerated private backup (replica 1) and one public
	// node (replica 5) — c=1 crash + m=1 "Byzantine" acting as silent.
	h.replicas[1].Crash()
	h.replicas[5].Crash()
	c := h.client(0)
	for i := 0; i < 10; i++ {
		h.mustPut(c, fmt.Sprintf("k%d", i), "v")
	}
	h.verifyConvergence(map[ids.ReplicaID]bool{1: true, 5: true})
}

func TestLionPrimaryCrashViewChange(t *testing.T) {
	h := newHarness(t, baseMembership(), ids.Lion, 6)
	c := h.client(0)
	h.mustPut(c, "before", "crash")

	h.replicas[0].Crash() // primary of view 0
	// The next request times out at the dead primary, the client
	// broadcasts, backups suspect, and the view change elects replica 1.
	h.mustPut(c, "after", "viewchange")
	h.mustGet(c, "before", "crash")
	h.mustGet(c, "after", "viewchange")

	h.verifyConvergence(map[ids.ReplicaID]bool{0: true})
	for _, r := range h.replicas[1:] {
		if r.View() == 0 {
			t.Errorf("replica %d still in view 0 after primary crash", r.ID())
		}
		if r.Mode() != ids.Lion {
			t.Errorf("replica %d left Lion mode", r.ID())
		}
	}
}

func TestDogPrimaryCrashViewChange(t *testing.T) {
	h := newHarness(t, baseMembership(), ids.Dog, 7)
	c := h.client(0)
	h.mustPut(c, "before", "crash")
	h.replicas[0].Crash()
	h.mustPut(c, "after", "viewchange")
	h.mustGet(c, "after", "viewchange")
	h.verifyConvergence(map[ids.ReplicaID]bool{0: true})
}

func TestPeacockPrimaryCrashTransfererViewChange(t *testing.T) {
	h := newHarness(t, baseMembership(), ids.Peacock, 8)
	c := h.client(0)
	h.mustPut(c, "before", "crash")
	// The Peacock primary of view 0 is replica S+0 = 2 (untrusted). A
	// Byzantine-silent primary looks exactly like a crashed one.
	h.replicas[2].Crash()
	h.mustPut(c, "after", "viewchange")
	h.mustGet(c, "after", "viewchange")
	h.verifyConvergence(map[ids.ReplicaID]bool{2: true})
	for _, r := range h.replicas {
		if r.ID() == 2 {
			continue
		}
		if r.View() == 0 {
			t.Errorf("replica %d still in view 0", r.ID())
		}
	}
}

func TestCheckpointGarbageCollection(t *testing.T) {
	h := newHarness(t, baseMembership(), ids.Lion, 9)
	c := h.client(0)
	// Period is 16; push well past two periods.
	for i := 0; i < 40; i++ {
		h.mustPut(c, fmt.Sprintf("k%d", i), "v")
	}
	h.verifyConvergence(nil)
	for _, r := range h.replicas {
		if r.StableCheckpoint() < 16 {
			t.Errorf("replica %d stable checkpoint %d, want ≥ 16", r.ID(), r.StableCheckpoint())
		}
		if r.LiveLogSlots() > 64 {
			t.Errorf("replica %d holds %d live slots; GC not working", r.ID(), r.LiveLogSlots())
		}
	}
}

func TestPeacockCheckpointGarbageCollection(t *testing.T) {
	h := newHarness(t, baseMembership(), ids.Peacock, 10)
	c := h.client(0)
	for i := 0; i < 40; i++ {
		h.mustPut(c, fmt.Sprintf("k%d", i), "v")
	}
	h.verifyConvergence(nil)
	for _, r := range h.replicas {
		if r.StableCheckpoint() < 16 {
			t.Errorf("replica %d stable checkpoint %d, want ≥ 16", r.ID(), r.StableCheckpoint())
		}
	}
}

func TestStateTransferCatchesUpIsolatedReplica(t *testing.T) {
	h := newHarness(t, baseMembership(), ids.Lion, 11)
	// Isolate a public backup, run several checkpoint periods, heal.
	lag := transport.ReplicaAddr(4)
	h.net.Isolate(lag)
	c := h.client(0)
	for i := 0; i < 48; i++ {
		h.mustPut(c, fmt.Sprintf("k%d", i), "v")
	}
	// Observe the lagging replica's progress through a probe (safe while
	// the engine runs).
	var caughtUp sync.WaitGroup
	caughtUp.Add(1)
	var once sync.Once
	h.replicas[4].SetProbe(Probe{OnCheckpointStable: func(seq uint64) {
		if seq >= 32 {
			once.Do(caughtUp.Done)
		}
	}})
	h.net.Heal(lag)
	// More traffic so the healed replica sees current checkpoints and
	// requests a state transfer.
	for i := 48; i < 64; i++ {
		h.mustPut(c, fmt.Sprintf("k%d", i), "v")
	}
	done := make(chan struct{})
	go func() { caughtUp.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("isolated replica never caught up")
	}
	h.verifyConvergence(nil)
}

func TestModeSwitchLionToDog(t *testing.T) {
	h := newHarness(t, baseMembership(), ids.Lion, 12)
	c := h.client(0)
	h.mustPut(c, "in-lion", "1")

	// The driver of a switch into Dog at view v+1 is the Dog primary of
	// view 1 = replica (1 mod S) = 1.
	h.replicas[1].RequestModeSwitch(ids.Dog)

	// The client keeps working across the switch; its policy follows the
	// mode echoed in replies.
	for i := 0; i < 10; i++ {
		h.mustPut(c, fmt.Sprintf("in-dog-%d", i), "2")
	}
	h.verifyConvergence(nil)
	for _, r := range h.replicas {
		if r.Mode() != ids.Dog {
			t.Errorf("replica %d in mode %s, want Dog", r.ID(), r.Mode())
		}
	}
}

func TestModeSwitchDogToPeacock(t *testing.T) {
	h := newHarness(t, baseMembership(), ids.Dog, 13)
	c := h.client(0)
	h.mustPut(c, "in-dog", "1")

	// Switching to Peacock at view 1 is driven by the transferer of view
	// 1 = replica (1 mod S) = 1.
	h.replicas[1].RequestModeSwitch(ids.Peacock)
	for i := 0; i < 10; i++ {
		h.mustPut(c, fmt.Sprintf("in-peacock-%d", i), "2")
	}
	h.verifyConvergence(nil)
	for _, r := range h.replicas {
		if r.Mode() != ids.Peacock {
			t.Errorf("replica %d in mode %s, want Peacock", r.ID(), r.Mode())
		}
	}
}

func TestModeSwitchPeacockBackToLion(t *testing.T) {
	h := newHarness(t, baseMembership(), ids.Peacock, 14)
	c := h.client(0)
	h.mustPut(c, "in-peacock", "1")
	h.replicas[1].RequestModeSwitch(ids.Lion)
	for i := 0; i < 10; i++ {
		h.mustPut(c, fmt.Sprintf("back-in-lion-%d", i), "2")
	}
	h.verifyConvergence(nil)
	for _, r := range h.replicas {
		if r.Mode() != ids.Lion {
			t.Errorf("replica %d in mode %s, want Lion", r.ID(), r.Mode())
		}
	}
}

func TestExactlyOnceAcrossRetransmission(t *testing.T) {
	mb := baseMembership()
	h := newHarness(t, mb, ids.Lion, 15)
	c := h.client(0)
	// Seed a counter-style balance and bump it through retries: use Add,
	// which is not idempotent, so double execution would show.
	seed := make([]byte, 8)
	seed[7] = 100
	h.mustPut(c, "acct", string(seed))
	// Crash the primary right before an Add so the request path includes
	// a client broadcast and a view change — the classic double-execution
	// trap.
	h.replicas[0].Crash()
	res, err := c.Invoke(statemachine.EncodeAdd("acct", 1))
	if err != nil {
		t.Fatal(err)
	}
	st, v := statemachine.DecodeResult(res)
	if st != statemachine.KVOK {
		t.Fatalf("add status %d", st)
	}
	if got := v[7]; got != 101 {
		t.Fatalf("balance %d, want 101", got)
	}
	h.verifyConvergence(map[ids.ReplicaID]bool{0: true})
	// Check the final balance on a live replica's store.
	bal, ok := h.kvs[1].Get("acct")
	if !ok || bal[7] != 101 {
		t.Fatalf("stored balance %v, want 101 (exactly-once violated?)", bal)
	}
}

func TestLargerClusterFigure2b(t *testing.T) {
	// Fig 2(b): c=2, m=2 → S=4, P=7, N=11.
	mb := ids.MustMembership(4, 7, 2, 2)
	h := newHarness(t, mb, ids.Lion, 16)
	c := h.client(0)
	for i := 0; i < 10; i++ {
		h.mustPut(c, fmt.Sprintf("k%d", i), "v")
	}
	h.verifyConvergence(nil)
}
