package core

import (
	"repro/internal/crypto"
	"repro/internal/ids"
	"repro/internal/message"
	"repro/internal/replica"
	"sort"
)

// Checkpointing and state transfer (the State Transfer subsections of
// Sections 5.1–5.3). In Lion and Dog the trusted primary's signed
// CHECKPOINT message is immediately a stability certificate; in Peacock
// the primary is untrusted, so stability needs 2m+1 matching proxy
// checkpoints, exactly like PBFT.

// maybeCheckpoint emits a CHECKPOINT if execution just crossed a
// checkpoint boundary and this replica's role produces checkpoints in
// the current mode.
func (r *Replica) maybeCheckpoint() {
	n := r.exec.LastExecuted()
	if !r.exec.AtCheckpoint(n) || n <= r.log.Low() {
		return
	}
	snap, ok := r.exec.SnapshotAt(n)
	if !ok {
		return
	}
	d := replica.DigestOf(snap)
	cp := &message.Signed{Kind: message.KindCheckpoint, Seq: n, Digest: d}

	switch r.mode {
	case ids.Lion, ids.Dog:
		// Only the trusted primary checkpoints; its signature alone makes
		// the checkpoint stable everywhere.
		if !r.isPrimary() {
			return
		}
		r.eng.SignRecord(cp)
		r.eng.Multicast(r.mb.All(), wireFromSigned(cp))
		r.stabilizeOrPend(n, d, []message.Signed{*cp})
	case ids.Peacock:
		// Every proxy checkpoints; stability needs a 2m+1 certificate.
		if !r.isProxy() {
			return
		}
		r.eng.SignRecord(cp)
		r.eng.Multicast(r.mb.All(), wireFromSigned(cp))
		if count := r.log.AddCheckpointCert(*cp); count >= r.mb.AgreementQuorum(ids.Peacock) {
			r.stabilizeOrPend(n, d, r.log.CheckpointCerts(n, d))
		}
	}
}

// onCheckpoint processes a CHECKPOINT message from a peer.
func (r *Replica) onCheckpoint(m *message.Message) {
	s := signedFromWire(m)
	if !r.eng.VerifyRecord(s) {
		return
	}
	switch r.mode {
	case ids.Lion, ids.Dog:
		// Trust only private-cloud signers (the paper's trusted primary;
		// any trusted node is non-malicious, so a crashed-and-recovered
		// ex-primary's checkpoint is equally sound).
		if !r.mb.IsTrusted(m.From) {
			return
		}
		r.stabilizeOrPend(m.Seq, m.Digest, []message.Signed{*s})
	case ids.Peacock:
		if !r.mb.IsUntrusted(m.From) {
			return
		}
		if count := r.log.AddCheckpointCert(*s); count >= r.mb.AgreementQuorum(ids.Peacock) {
			r.stabilizeOrPend(m.Seq, m.Digest, r.log.CheckpointCerts(m.Seq, m.Digest))
		}
	}
}

// stabilizeOrPend marks a checkpoint stable if local execution has
// already produced the matching snapshot; otherwise it parks the
// evidence and, if the replica has fallen a whole period behind,
// requests a state transfer.
func (r *Replica) stabilizeOrPend(seq uint64, d crypto.Digest, proof []message.Signed) {
	if seq <= r.log.Low() {
		return
	}
	if snap, ok := r.exec.SnapshotAt(seq); ok {
		if replica.DigestOf(snap) == d {
			r.markStableLocal(seq, d, proof, snap)
		}
		// A digest mismatch with local state would mean a diverged
		// replica; with a crash-only private cloud signing checkpoints
		// that cannot happen, and in Peacock a 2m+1 certificate outvotes
		// us — but overwriting executed state in place is not possible
		// (state transfer only moves forward), so the evidence is
		// dropped and the replica will be caught by its peers.
		return
	}
	if r.exec.LastExecuted() < seq {
		r.pendingStable[seq] = &stableEvidence{digest: d, proof: proof}
		r.maybeRequestState()
	}
}

func (r *Replica) markStableLocal(seq uint64, d crypto.Digest, proof []message.Signed, snap []byte) {
	if seq <= r.log.Low() {
		return
	}
	r.log.MarkStable(seq, d, proof, snap)
	// The WAL truncates on the same stabilization that garbage-collects
	// the in-memory log, so disk usage tracks the live window.
	r.jr.Stable(r.view, r.mode, seq, d, proof, snap)
	r.exec.DropSnapshotsBelow(seq)
	for n := range r.pendingStable {
		if n <= seq {
			delete(r.pendingStable, n)
		}
	}
	if r.nextSeq <= seq {
		r.nextSeq = seq + 1
	}
	if p := r.loadProbe(); p.OnCheckpointStable != nil {
		p.OnCheckpointStable(seq)
	}
}

// drainPendingStable retries parked checkpoint evidence after execution
// progressed. Ready sequence numbers are drained in ascending order —
// stabilization may send messages, and map-iteration order would make
// the send schedule vary between otherwise identical runs.
func (r *Replica) drainPendingStable() {
	var ready []uint64
	for seq := range r.pendingStable {
		if seq <= r.exec.LastExecuted() {
			ready = append(ready, seq)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	for _, seq := range ready {
		ev := r.pendingStable[seq]
		delete(r.pendingStable, seq)
		r.stabilizeOrPend(seq, ev.digest, ev.proof)
	}
}

// maybeRequestState asks peers for a snapshot when this replica has
// evidence of a stable checkpoint at least one full period ahead of its
// own execution — the "bring slow replicas up to date" path.
func (r *Replica) maybeRequestState() {
	last := r.exec.LastExecuted()
	behindBy := uint64(0)
	for seq := range r.pendingStable {
		if seq > last && seq-last > behindBy {
			behindBy = seq - last
		}
	}
	if behindBy == 0 {
		return
	}
	now := r.clk.Now()
	if behindBy < r.exec.Period() {
		// A sub-period gap normally closes by itself as in-flight commits
		// execute. But an executor that sits still a whole view-change
		// period with stable evidence ahead of it is wedged on a hole —
		// slots that committed while it was partitioned or deposed — and
		// only a transfer can unwedge it.
		if last != r.stallExec {
			r.stallExec, r.stallSince = last, now
			return
		}
		if now.Sub(r.stallSince) < r.timing.ViewChange {
			return
		}
	}
	if now.Sub(r.stateRequested) < r.timing.ViewChange {
		return // throttle
	}
	r.stateRequested = now

	req := &message.Message{Kind: message.KindStateRequest, Seq: r.exec.LastExecuted()}
	r.eng.Sign(req)
	switch r.mode {
	case ids.Lion, ids.Dog:
		r.eng.Send(r.mb.Primary(r.mode, r.view), req)
	case ids.Peacock:
		r.eng.Multicast(r.mb.Proxies(ids.Peacock, r.view), req)
	}
}

// onStateRequest serves the latest stable snapshot — plus the log
// suffix above it — to a lagging or restarted peer. The suffix lets the
// receiver hold the request payloads of in-flight slots (so it can
// vote and execute as the commits arrive) and, in Lion, adopt slots the
// trusted primary already committed, instead of idling until the next
// checkpoint.
func (r *Replica) onStateRequest(m *message.Message) {
	if !r.eng.Verify(m) {
		return
	}
	low := r.log.Low()
	rep := &message.Message{
		Kind:     message.KindStateReply,
		Prepares: replica.CapSuffix(r.log.ProposalsAbove()),
	}
	if r.mode != ids.Peacock {
		// Lion keeps trusted commit certificates; they are definitive
		// for the receiver on their own.
		rep.Commits = replica.CapSuffix(r.log.CommitCertsAbove())
	}
	if low > m.Seq {
		rep.Seq = low
		rep.StateDigest = r.log.StableDigest()
		rep.CheckpointProof = r.log.StableProof()
		rep.Result = r.log.StableSnapshot()
	} else if len(rep.Prepares) == 0 && len(rep.Commits) == 0 {
		return // requester is at or ahead of everything we hold
	}
	// A requester already at our checkpoint still gets the live log
	// suffix (payloads of in-flight slots), just not the redundant
	// full-state snapshot.
	r.eng.Sign(rep)
	r.eng.Send(m.From, rep)
}

// onStateReply installs a transferred snapshot after verifying the
// checkpoint certificate and the snapshot digest, then adopts the
// attached log suffix (each record individually verified).
func (r *Replica) onStateReply(m *message.Message) {
	if !r.eng.Verify(m) {
		return
	}
	seq := m.Seq
	if seq > r.exec.LastExecuted() &&
		r.verifyCheckpointProof(seq, m.StateDigest, m.CheckpointProof) &&
		replica.DigestOf(m.Result) == m.StateDigest {
		if err := r.exec.JumpTo(seq, m.Result); err != nil {
			return
		}
		r.log.MarkStable(seq, m.StateDigest, m.CheckpointProof, m.Result)
		r.jr.Stable(r.view, r.mode, seq, m.StateDigest, m.CheckpointProof, m.Result)
		r.exec.DropSnapshotsBelow(seq)
		for n := range r.pendingStable {
			if n <= seq {
				delete(r.pendingStable, n)
			}
		}
		if r.nextSeq <= seq {
			r.nextSeq = seq + 1
		}
		r.resetPending()
		if p := r.loadProbe(); p.OnCheckpointStable != nil {
			p.OnCheckpointStable(seq)
		}
	}
	// The suffix is useful even when the snapshot itself was stale (we
	// may only be missing payloads of live slots).
	r.installLogSuffix(m)
	r.executeReady()
}

// verifyCheckpointProof validates ξ for (seq, d): every record must be a
// well-signed CHECKPOINT for that exact state, and the signer set must
// contain a trusted node (whose word alone suffices — it cannot lie) or
// at least m+1 distinct public nodes (so at least one correct one
// vouches; PBFT's weak certificate).
func (r *Replica) verifyCheckpointProof(seq uint64, d crypto.Digest, proof []message.Signed) bool {
	if seq == 0 {
		return true // genesis
	}
	seen := make(map[ids.ReplicaID]bool, len(proof))
	publicSigners := 0
	trustedSigner := false
	for i := range proof {
		s := proof[i]
		if s.Kind != message.KindCheckpoint || s.Seq != seq || s.Digest != d {
			return false
		}
		if seen[s.From] || !r.mb.Contains(s.From) {
			return false
		}
		seen[s.From] = true
		if !r.eng.VerifyRecord(&s) {
			return false
		}
		if r.mb.IsTrusted(s.From) {
			trustedSigner = true
		} else {
			publicSigners++
		}
	}
	return trustedSigner || publicSigners >= r.mb.M()+1
}
