// Package core implements SeeMoRe, the paper's hybrid State Machine
// Replication protocol for public/private cloud environments. A Replica
// runs one of three modes (Section 5):
//
//   - Lion: trusted primary in the private cloud, two phases, O(n)
//     messages, quorum 2m+c+1 over the whole network.
//   - Dog: trusted primary, agreement delegated to 3m+1 public-cloud
//     proxies, two phases, O(n²) among proxies, quorum 2m+1.
//   - Peacock: untrusted primary, PBFT among 3m+1 proxies, three phases,
//     with a trusted transferer driving view changes.
//
// The package also implements checkpointing with garbage collection,
// state transfer for lagging replicas, per-mode view changes, and the
// dynamic mode-switching protocol of Section 5.4.
//
// # Throughput path
//
// Two knobs stack on the paper's per-request agreement rounds, both off
// by default (their zero values keep the wire traffic byte-identical to
// the plain protocol):
//
//   - Batching (config.Batching): the primary packs up to BatchSize
//     client requests into one consensus slot, amortizing one agreement
//     round — and its signing work — over the batch.
//   - Pipelining (config.Pipelining): the primary keeps up to Depth
//     slots in flight concurrently instead of waiting for slot n to
//     commit before proposing n+1, overlapping the agreement round
//     trips of independent sequence numbers.
//
// Commits collect out of order in the message log; the executor applies
// slots strictly in sequence order, so pipelining never reorders
// execution. Each in-flight slot carries its own liveness timer
// (replica.Pending), so a stalled slot is suspected after τ even while
// its neighbors commit, and a view change re-proposes the whole
// in-flight window via the NEW-VIEW's P′/C′ sets. Once round trips
// overlap, signature checking dominates; batched payloads verify on a
// worker pool (replica.Engine.VerifyRequests).
package core
