package client

//lint:file-allow clockcheck MaxStaleness bounds and retry deadlines are real-time client contracts measured on the host clock

import (
	"time"

	"repro/internal/crypto"
	"repro/internal/ids"
	"repro/internal/message"
	"repro/internal/transport"
)

// Consistency re-exports the wire-level read consistency levels under
// the names callers use in ReadOptions.
type Consistency = message.Consistency

const (
	// Linearizable orders the read through consensus like any write.
	Linearizable Consistency = message.ConsistencyLinearizable
	// Leased serves the read locally at a trusted-mode primary holding
	// a quorum-acknowledged leader lease — still linearizable, but with
	// no slot allocated and no agreement round.
	Leased Consistency = message.ConsistencyLeased
	// Stale serves the read from any trusted replica's executed prefix
	// with no coordination at all, bounded by ReadOptions.MaxStaleness
	// and this client's own read-your-writes monotonicity.
	Stale Consistency = message.ConsistencyStale
)

// ReadOptions selects how a read is served.
type ReadOptions struct {
	// Consistency picks the serving path; the zero value is
	// Linearizable, which behaves exactly like Invoke.
	Consistency Consistency
	// MaxStaleness bounds a Stale read against this client's knowledge:
	// the result must be at least as fresh as every watermark the
	// client had observed MaxStaleness ago. Zero means only the
	// monotonic read-your-writes floor applies.
	MaxStaleness time.Duration
}

// ReadPolicy is the optional capability a Policy implements when its
// protocol can serve fast-path reads. Policies without it (the
// baselines — their replicas do not speak READ) silently degrade every
// read to Linearizable.
type ReadPolicy interface {
	// LeaseTarget returns the replica believed to hold the read lease,
	// or false when the current mode has no trusted lease holder.
	LeaseTarget() (ids.ReplicaID, bool)
	// StaleTargets returns the replicas whose lone stale reply the
	// client may trust.
	StaleTargets() []ids.ReplicaID
}

// wmObs is one point of the client's freshness knowledge: some replica
// had executed up to wm when the client observed it at time at. The log
// stays strictly increasing in wm and non-decreasing in time.
type wmObs struct {
	wm uint64
	at time.Time
}

// maxWatermarkLog bounds the freshness log; dropping the oldest entry
// can only weaken (never violate) the staleness bound it backs.
const maxWatermarkLog = 256

// noteWatermark records freshness knowledge from any validated reply,
// accepted or not.
func (c *Client) noteWatermark(wm uint64, now time.Time) {
	if wm == 0 {
		return
	}
	if n := len(c.wmLog); n > 0 && c.wmLog[n-1].wm >= wm {
		return // dominated: an at-least-as-fresh observation is already older
	}
	c.wmLog = append(c.wmLog, wmObs{wm: wm, at: now})
	if len(c.wmLog) > maxWatermarkLog {
		c.wmLog = c.wmLog[1:]
	}
}

// requiredWatermark returns the freshest watermark the client had
// observed at or before cutoff — the floor a MaxStaleness bound imposes
// — and prunes the entries that precede it (every later computation's
// cutoff only moves forward).
func (c *Client) requiredWatermark(cutoff time.Time) uint64 {
	idx := -1
	for i, o := range c.wmLog {
		if o.at.After(cutoff) {
			break
		}
		idx = i
	}
	if idx < 0 {
		return 0
	}
	c.wmLog = c.wmLog[idx:]
	return c.wmLog[0].wm
}

// advanceFloor raises the monotonic read floor to the freshest
// watermark vouching for the accepted result.
func (c *Client) advanceFloor(replies map[ids.ReplicaID]*message.Message, result []byte) {
	for _, m := range replies {
		if string(m.Result) == string(result) && m.Watermark > c.readFloor {
			c.readFloor = m.Watermark
		}
	}
}

// ObservedFloor returns the monotonic read floor: the highest executed
// watermark vouching for any result this client accepted. Tests assert
// it never goes backwards.
func (c *Client) ObservedFloor() uint64 { return c.readFloor }

// Read executes a read-only state-machine operation at the requested
// consistency level. Linearizable reads — and reads against a policy
// without the ReadPolicy capability — go through Invoke unchanged.
// Leased reads go to the lease holder; Stale reads go to a trusted
// follower, rotating for load spreading. Whenever the fast path stalls
// (an expired lease, a partitioned or lagging replica, a too-stale
// answer), the read falls back to full consensus ordering, so every
// call eventually returns a correct result or times out like Invoke.
func (c *Client) Read(op []byte, opts ReadOptions) ([]byte, error) {
	rp, capable := c.policy.(ReadPolicy)
	if !capable || opts.Consistency == Linearizable || !opts.Consistency.Valid() {
		return c.Invoke(op)
	}
	var targets []ids.ReplicaID
	switch opts.Consistency {
	case Leased:
		t, ok := rp.LeaseTarget()
		if !ok {
			return c.Invoke(op)
		}
		targets = []ids.ReplicaID{t}
	case Stale:
		all := rp.StaleTargets()
		if len(all) == 0 {
			return c.Invoke(op)
		}
		targets = []ids.ReplicaID{all[c.staleRR%len(all)]}
		c.staleRR++
	}

	c.ts++
	req := &message.Request{Op: op, Timestamp: c.ts, Client: c.id}
	req.Sig = c.suite.Sign(crypto.ClientPrincipal(int64(c.id)), req.SignedBytes())
	wire := message.Marshal(&message.Message{
		Kind:        message.KindRead,
		From:        -1,
		Request:     req,
		Consistency: opts.Consistency,
	})
	send := func(to []ids.ReplicaID) {
		for _, r := range to {
			c.ep.Send(transport.ReplicaAddr(r), wire)
		}
	}
	send(targets)

	// The acceptance floor for stale replies: read-your-writes
	// monotonicity always, plus the MaxStaleness-derived freshness bound.
	floor := c.readFloor
	if opts.Consistency == Stale && opts.MaxStaleness > 0 {
		if need := c.requiredWatermark(time.Now().Add(-opts.MaxStaleness)); need > floor {
			floor = need
		}
	}

	replies := make(map[ids.ReplicaID]*message.Message)
	retried := false
	deadline := time.NewTimer(c.retry)
	defer deadline.Stop()
	for {
		select {
		case env, ok := <-c.ep.Inbox():
			if !ok {
				return nil, errEndpointClosed
			}
			rep := c.validReply(env, c.ts)
			if rep == nil {
				continue
			}
			c.noteWatermark(rep.Watermark, time.Now())
			if opts.Consistency == Stale && rep.Watermark < floor {
				continue // too stale for this client; another replica may do
			}
			replies[rep.From] = rep
			if result, done := c.policy.Done(replies, retried); done {
				c.policy.Observe(replies)
				c.advanceFloor(replies, result)
				return result, nil
			}
		case <-deadline.C:
			if opts.Consistency == Stale && !retried {
				// One follower stalled or lagged: ask every eligible one
				// before paying for consensus.
				retried = true
				send(rp.StaleTargets())
				deadline.Reset(c.retry)
				continue
			}
			// Fast path unavailable (expired lease, partitioned holder,
			// everyone too stale): order the read like a write.
			return c.Invoke(op)
		}
	}
}
