package client

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/crypto"
	"repro/internal/ids"
	"repro/internal/message"
	"repro/internal/statemachine"
	"repro/internal/transport"
)

// evenOdd is a two-way test partitioner with a predictable split.
type evenOdd struct{}

func (evenOdd) Shards() int { return 2 }
func (evenOdd) Owner(key string) ids.GroupID {
	if len(key) > 0 && (key[len(key)-1]-'0')%2 == 1 {
		return 1
	}
	return 0
}

func TestNewRouterValidation(t *testing.T) {
	mb := ids.MustMembership(2, 4, 1, 1)
	suite := crypto.NewEd25519Suite(1, mb.N(), 4)
	net := transport.NewSimNetwork(transport.SimConfig{Seed: 1, PrivateSize: 2})
	defer net.Close()
	mk := func(g ids.GroupID) *Client {
		return New(0, suite, transport.Grouped(net, g), NewSeeMoRePolicy(mb, ids.Lion), testTiming())
	}

	if _, err := NewRouter([]*Client{mk(0), mk(1)}, nil, nil); err == nil {
		t.Error("nil partitioner accepted")
	}
	if _, err := NewRouter([]*Client{mk(0)}, evenOdd{}, nil); err == nil {
		t.Error("client/shard count mismatch accepted")
	}
	if _, err := NewRouter([]*Client{mk(0), nil}, evenOdd{}, nil); err == nil {
		t.Error("nil group client accepted")
	}
	r, err := NewRouter([]*Client{mk(0), mk(1)}, evenOdd{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Shards() != 2 {
		t.Fatalf("Shards() = %d", r.Shards())
	}
}

func TestRouterRoutesByKey(t *testing.T) {
	mb := ids.MustMembership(2, 4, 1, 1)
	suite := crypto.NewEd25519Suite(2, mb.N(), 4)
	net := transport.NewSimNetwork(transport.SimConfig{Seed: 2, PrivateSize: 2})
	defer net.Close()

	// One fake trusted replica per group, each answering with a
	// group-identifying result, attached through the group wrapper so it
	// lives at the group-qualified address.
	for g := 0; g < 2; g++ {
		startFake(transport.Grouped(net, ids.GroupID(g)), suite, 0,
			okReply(ids.Lion, 0, []byte{statemachine.KVOK, byte('0' + g)}))
	}

	mk := func(g ids.GroupID) *Client {
		return New(3, suite, transport.Grouped(net, g), NewSeeMoRePolicy(mb, ids.Lion), testTiming())
	}
	r, err := NewRouter([]*Client{mk(0), mk(1)}, evenOdd{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// key "x1" is odd → group 1; "x2" is even → group 0.
	if g, err := r.OwnerOf(statemachine.EncodeGet("x1")); err != nil || g != 1 {
		t.Fatalf("OwnerOf(x1) = %v, %v", g, err)
	}
	// A malformed op has no routing key — that is an explicit error, not
	// a silent trip to group 0.
	if _, err := r.OwnerOf([]byte{0xff, 0x01}); !errors.Is(err, ErrUnroutable) {
		t.Fatalf("OwnerOf(malformed) = %v, want ErrUnroutable", err)
	}
	if _, err := r.Invoke([]byte{0xff, 0x01}); !errors.Is(err, ErrUnroutable) {
		t.Fatalf("Invoke(malformed) = %v, want ErrUnroutable", err)
	}
	res, err := r.Invoke(statemachine.EncodePut("x1", []byte("v")))
	if err != nil {
		t.Fatal(err)
	}
	if _, val := statemachine.DecodeResult(res); string(val) != "1" {
		t.Fatalf("put x1 answered by group %q, want 1", val)
	}
	res, err = r.Invoke(statemachine.EncodePut("x2", []byte("v")))
	if err != nil {
		t.Fatal(err)
	}
	if _, val := statemachine.DecodeResult(res); string(val) != "0" {
		t.Fatalf("put x2 answered by group %q, want 0", val)
	}

	// MultiGet fans out and reassembles in key order.
	vals, err := r.MultiGet([]string{"a1", "a2", "a3"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1", "0", "1"}
	for i, v := range vals {
		if string(v) != want[i] {
			t.Fatalf("MultiGet[%d] = %q, want %q", i, v, want[i])
		}
	}
}

// TestMultiGetReturnsOnFirstGroupError is the regression test for the
// fan-out cancellation bug: one group fails immediately (closed
// endpoint) while the other is a crashed shard — nobody answers, and
// its 20-retry default budget would hold the call for ~20× the retry
// interval. The first error must cancel the sibling goroutine, so the
// whole call returns within one retry interval.
func TestMultiGetReturnsOnFirstGroupError(t *testing.T) {
	mb := ids.MustMembership(2, 4, 1, 1)
	suite := crypto.NewEd25519Suite(4, mb.N(), 4)
	net := transport.NewSimNetwork(transport.SimConfig{Seed: 4, PrivateSize: 2})
	defer net.Close()

	timing := testTiming()
	timing.ClientRetry = 100 * time.Millisecond
	mk := func(g ids.GroupID) *Client {
		return New(0, suite, transport.Grouped(net, g), NewSeeMoRePolicy(mb, ids.Lion), timing)
	}
	r, err := NewRouter([]*Client{mk(0), mk(1)}, evenOdd{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Group 0's client fails fast: its endpoint is gone. Group 1 (the
	// crashed shard) stays silent behind the full retry schedule.
	r.clients[0].Close()

	start := time.Now()
	_, err = r.MultiGet([]string{"a2", "a1"}) // a2 → group 0, a1 → group 1
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("MultiGet against a dead group succeeded")
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatalf("cancellation surfaced as the call's error: %v", err)
	}
	if elapsed > timing.ClientRetry {
		t.Fatalf("MultiGet took %v, want < one retry interval (%v): the failed group did not cancel the crashed shard's wait", elapsed, timing.ClientRetry)
	}
}

// TestInitialTimestampSeedsRequests pins the restarted-client satellite
// at the unit level: a seeded client's first request carries a
// timestamp above the seed, and a zero-seeded timeout carries the
// stale-timestamp hint.
func TestInitialTimestampSeedsRequests(t *testing.T) {
	mb := ids.MustMembership(2, 4, 1, 1)
	suite := crypto.NewEd25519Suite(5, mb.N(), 4)
	net := transport.NewSimNetwork(transport.SimConfig{Seed: 5, PrivateSize: 2})
	defer net.Close()

	var gotTS uint64
	startFake(net, suite, 0, func(req *message.Request) *message.Message {
		if req.Client != 0 {
			return nil // leave the other clients to their timeout paths
		}
		gotTS = req.Timestamp
		return okReply(ids.Lion, 0, []byte("r"))(req)
	})

	const seed = 1_000_000
	c := NewWithConfig(0, suite, net, NewSeeMoRePolicy(mb, ids.Lion), testTiming(),
		config.Client{InitialTimestamp: seed})
	if c.Timestamp() != seed {
		t.Fatalf("Timestamp() = %d before first request, want the seed %d", c.Timestamp(), seed)
	}
	if _, err := c.Invoke([]byte("op")); err != nil {
		t.Fatal(err)
	}
	if gotTS != seed+1 {
		t.Fatalf("first request timestamp = %d, want %d", gotTS, seed+1)
	}

	// Zero-seeded timeouts explain the silent-rejection failure mode.
	timing := testTiming()
	timing.ClientRetry = 5 * time.Millisecond
	c2 := NewWithConfig(1, suite, net, NewSeeMoRePolicy(mb, ids.Lion), timing,
		config.Client{MaxRetries: 1})
	_, err := c2.Invoke([]byte("op"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if !strings.Contains(err.Error(), "stale timestamp") {
		t.Fatalf("zero-seeded timeout lacks the stale-timestamp hint: %v", err)
	}
	c3 := NewWithConfig(2, suite, net, NewSeeMoRePolicy(mb, ids.Lion), timing,
		config.Client{MaxRetries: 1, InitialTimestamp: 7})
	if _, err := c3.Invoke([]byte("op")); err == nil || strings.Contains(err.Error(), "stale timestamp") {
		t.Fatalf("seeded timeout should not carry the hint: %v", err)
	}
}

// TestClientRetryKnobs pins the config.Client satellite: a tight retry
// budget fails fast, and backoff stretches the gap between broadcasts.
func TestClientRetryKnobs(t *testing.T) {
	mb := ids.MustMembership(2, 4, 1, 1)
	suite := crypto.NewEd25519Suite(3, mb.N(), 4)
	net := transport.NewSimNetwork(transport.SimConfig{Seed: 3, PrivateSize: 2})
	defer net.Close()
	// Nobody answers: every invoke runs its full retry schedule.

	timing := testTiming()
	timing.ClientRetry = 5 * time.Millisecond

	start := time.Now()
	c := NewWithConfig(0, suite, net, NewSeeMoRePolicy(mb, ids.Lion), timing,
		config.Client{MaxRetries: 2})
	_, err := c.Invoke([]byte("op"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	fixed := time.Since(start)
	// 3 timeout waits of ~5ms each (initial + 2 retries): far below the
	// 20-retry default budget of ≥100ms.
	if fixed > 80*time.Millisecond {
		t.Fatalf("MaxRetries=2 took %v; the budget knob is not honored", fixed)
	}

	// Backoff: waits of 5+10+20 = 35ms minimum versus 15ms fixed.
	start = time.Now()
	c2 := NewWithConfig(1, suite, net, NewSeeMoRePolicy(mb, ids.Lion), timing,
		config.Client{MaxRetries: 2, Backoff: 2})
	_, err = c2.Invoke([]byte("op"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if backed := time.Since(start); backed < 30*time.Millisecond {
		t.Fatalf("backoff schedule finished in %v, want ≥ 30ms (5+10+20)", backed)
	}
}
