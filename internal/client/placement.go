package client

import (
	"errors"
	"fmt"

	"repro/internal/crypto"
	"repro/internal/ids"
	"repro/internal/placement"
	"repro/internal/statemachine"
)

// MetaGroup is the consensus group holding the authoritative placement
// map. Pinning it to group 0 keeps bootstrap trivial: group 0 exists in
// every deployment, including the unsharded one.
const MetaGroup ids.GroupID = 0

// placementOps adapts a Router's per-group clients to the
// placement.Ops contract the migration controller drives. Every call
// is an ordered invocation on the addressed group — the controller's
// steps are replicated state transitions, never local mutations — and
// the concrete op encodings live in internal/statemachine, which keeps
// internal/placement free of any dependency on this layer.
type placementOps struct {
	r *Router
}

// PlacementOps exposes the router's groups as placement.Ops;
// placement.NewController(r.PlacementOps()) is the reshard driver.
func (r *Router) PlacementOps() placement.Ops { return &placementOps{r: r} }

func (o *placementOps) invoke(g ids.GroupID, op []byte) (byte, []byte, error) {
	if int(g) < 0 || int(g) >= len(o.r.clients) {
		return 0, nil, fmt.Errorf("client: placement op for unprovisioned group %v", g)
	}
	res, err := o.r.clients[g].Invoke(op)
	if err != nil {
		return 0, nil, err
	}
	status, payload := statemachine.DecodeResult(res)
	return status, payload, nil
}

// MetaGet implements placement.Ops (a linearized read of the
// authoritative map).
func (o *placementOps) MetaGet() (*placement.Map, error) {
	status, payload, err := o.invoke(MetaGroup, statemachine.EncodeMetaGet())
	if err != nil {
		return nil, err
	}
	if status != statemachine.KVOK {
		return nil, fmt.Errorf("client: meta map read failed with status %d (meta group unseeded?)", status)
	}
	m, err := placement.DecodeMap(payload)
	if err != nil {
		return nil, err
	}
	o.r.adoptPlacement(m)
	return m, nil
}

// MetaApply implements placement.Ops.
func (o *placementOps) MetaApply(c placement.Cmd) (*placement.Map, *placement.Map, error) {
	status, payload, err := o.invoke(MetaGroup, statemachine.EncodeMetaApply(c))
	if err != nil {
		return nil, nil, err
	}
	switch status {
	case statemachine.KVOK:
		m, err := placement.DecodeMap(payload)
		if err != nil {
			return nil, nil, err
		}
		o.r.adoptPlacement(m)
		return m, nil, nil
	case statemachine.KVWrongEpoch:
		// A migration is already pending; the payload is the current map
		// naming it, so the caller can finish it first.
		cur, err := placement.DecodeMap(payload)
		if err != nil {
			return nil, nil, err
		}
		o.r.adoptPlacement(cur)
		return nil, cur, placement.ErrPending
	default:
		return nil, nil, fmt.Errorf("client: meta apply of %v rejected with status %d", c.Kind, status)
	}
}

// MetaDone implements placement.Ops.
func (o *placementOps) MetaDone(epoch uint64) (*placement.Map, error) {
	status, payload, err := o.invoke(MetaGroup, statemachine.EncodeMetaDone(epoch))
	if err != nil {
		return nil, err
	}
	if status != statemachine.KVOK {
		return nil, fmt.Errorf("client: meta done of epoch %d rejected with status %d", epoch, status)
	}
	m, err := placement.DecodeMap(payload)
	if err != nil {
		return nil, err
	}
	o.r.adoptPlacement(m)
	return m, nil
}

// Seal implements placement.Ops. A KVLocked refusal (an in-range
// transaction still holds its locks) is resolved — presumed abort for
// an abandoned coordinator, roll-forward for a decided one — and
// reported as ErrSealBusy so the controller retries; a live transaction
// that finishes on its own clears the next attempt anyway.
func (o *placementOps) Seal(g ids.GroupID, m *placement.Map) (placement.SealResult, error) {
	status, payload, err := o.invoke(g, statemachine.EncodePlaceSeal(m))
	if err != nil {
		return placement.SealResult{}, err
	}
	switch status {
	case statemachine.KVOK:
		return statemachine.DecodeSealResult(append([]byte{statemachine.KVOK}, payload...))
	case statemachine.KVLocked:
		if holder, ok := statemachine.DecodeLockHolder(payload); ok {
			// Best-effort: a still-live coordinator finishing first is
			// just as good as our resolve succeeding.
			_, _ = o.r.ResolveTx(g, holder)
		}
		return placement.SealResult{}, placement.ErrSealBusy
	default:
		return placement.SealResult{}, fmt.Errorf("client: seal on %v rejected with status %d", g, status)
	}
}

// Export implements placement.Ops.
func (o *placementOps) Export(g ids.GroupID, epoch uint64, start string, limit int) ([]placement.Pair, bool, error) {
	status, payload, err := o.invoke(g, statemachine.EncodePlaceExport(epoch, start, limit))
	if err != nil {
		return nil, false, err
	}
	if status != statemachine.KVOK {
		return nil, false, fmt.Errorf("client: export from %v rejected with status %d", g, status)
	}
	pairs, more, err := statemachine.DecodeScanResult(append([]byte{statemachine.KVOK}, payload...))
	if err != nil {
		return nil, false, err
	}
	out := make([]placement.Pair, len(pairs))
	for i, p := range pairs {
		out[i] = placement.Pair{Key: p.Key, Value: p.Value}
	}
	return out, more, nil
}

// Install implements placement.Ops.
func (o *placementOps) Install(g ids.GroupID, m *placement.Map, pairs []placement.Pair, done bool, digest [32]byte) error {
	op := statemachine.EncodePlaceInstall(m, pairs, done, crypto.Digest(digest))
	status, payload, err := o.invoke(g, op)
	if err != nil {
		return err
	}
	if status != statemachine.KVOK {
		return fmt.Errorf("client: install on %v rejected with status %d", g, status)
	}
	if _, err := statemachine.DecodeInstallResult(append([]byte{statemachine.KVOK}, payload...)); err != nil {
		return err
	}
	return nil
}

// Complete implements placement.Ops.
func (o *placementOps) Complete(g ids.GroupID, epoch uint64) error {
	status, _, err := o.invoke(g, statemachine.EncodePlaceComplete(epoch))
	if err != nil {
		return err
	}
	if status != statemachine.KVOK {
		return fmt.Errorf("client: complete on %v rejected with status %d", g, status)
	}
	return nil
}

// adoptPlacement folds an authoritative map into the router's cache (a
// no-op for static routers and stale maps).
func (r *Router) adoptPlacement(m *placement.Map) {
	if r.cache != nil {
		r.cache.Update(m)
	}
}

// RefreshPlacement reads the authoritative map from the meta group and
// adopts it. Routers call it lazily when a reply's epoch stamp runs
// ahead of the cache; tools call it to print current placement.
func (r *Router) RefreshPlacement() (*placement.Map, error) {
	if r.cache == nil {
		return nil, errors.New("client: static router has no placement to refresh")
	}
	return (&placementOps{r: r}).MetaGet()
}

// PlacementEpoch reports the cached placement epoch (0 on static
// routers).
func (r *Router) PlacementEpoch() uint64 {
	if r.cache == nil {
		return 0
	}
	return r.cache.Epoch()
}
