package client

import (
	"fmt"

	"repro/internal/statemachine"
)

// Invoker is the protocol-invocation surface the single-group Client
// and the sharded Router both provide. Everything that used to
// special-case "one shard vs many" — the cluster harness, the bench
// driver, the 2PC coordinator — programs against this instead.
type Invoker interface {
	// Invoke orders one operation and blocks for its reply quorum.
	Invoke(op []byte) ([]byte, error)
	// InvokeCancel is Invoke with an early-exit signal (see
	// Client.InvokeCancel).
	InvokeCancel(op []byte, cancel <-chan struct{}) ([]byte, error)
	// Close releases the underlying endpoint(s).
	Close()
}

// Reader is the optional fast-read capability of an Invoker.
type Reader interface {
	Read(op []byte, opts ReadOptions) ([]byte, error)
}

// Scanner is the optional range-scan capability of an Invoker; the
// Router implements it by streaming per-shard continuations into one
// ordered result.
type Scanner interface {
	Scan(lo, hi string, limit int, opts ReadOptions) ([]statemachine.ScanPair, bool, error)
}

// Compile-time checks: both client shapes satisfy the unified surface.
var (
	_ Invoker = (*Client)(nil)
	_ Invoker = (*Router)(nil)
	_ Reader  = (*Client)(nil)
	_ Reader  = (*Router)(nil)
)

// KV is the typed facade over the replicated KV store: callers say what
// they want (a key, a range, a consistency level) instead of
// hand-rolling op bytes and decoding status bytes at every call site.
// It is exactly as concurrency-safe as the Invoker underneath — run one
// per goroutine.
type KV struct {
	inv Invoker
}

// NewKV wraps an Invoker (a Client or a Router).
func NewKV(inv Invoker) *KV { return &KV{inv: inv} }

// LockedError reports a write rejected because its key is locked by a
// prepared cross-shard transaction (statemachine.KVLocked). Holder is
// the blocking transaction; retrying after it commits or aborts — or
// issuing a transaction that touches the key, triggering presumed-abort
// recovery — clears it.
type LockedError struct {
	Key    string
	Holder statemachine.TxID
}

func (e *LockedError) Error() string {
	return fmt.Sprintf("client: key %q locked by transaction %v", e.Key, e.Holder)
}

// writeErr turns a non-OK write status into a typed error.
func writeErr(verb, key string, status byte, payload []byte) error {
	if status == statemachine.KVLocked {
		if holder, ok := statemachine.DecodeLockHolder(payload); ok {
			return &LockedError{Key: key, Holder: holder}
		}
	}
	return fmt.Errorf("client: %s %q failed with status %d", verb, key, status)
}

// read dispatches a read-only op per the requested consistency,
// degrading to ordered invocation when the Invoker cannot serve fast
// reads (a baseline protocol's client, a Linearizable request).
func (kv *KV) read(op []byte, opts ReadOptions) ([]byte, error) {
	if r, ok := kv.inv.(Reader); ok && opts.Consistency != Linearizable {
		return r.Read(op, opts)
	}
	return kv.inv.Invoke(op)
}

// Get reads one key. found reports whether the key exists.
func (kv *KV) Get(key string, opts ReadOptions) (value []byte, found bool, err error) {
	res, err := kv.read(statemachine.EncodeGet(key), opts)
	if err != nil {
		return nil, false, err
	}
	status, v := statemachine.DecodeResult(res)
	switch status {
	case statemachine.KVOK:
		return v, true, nil
	case statemachine.KVNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("client: get %q failed with status %d", key, status)
	}
}

// Put writes one key.
func (kv *KV) Put(key string, value []byte) error {
	res, err := kv.inv.Invoke(statemachine.EncodePut(key, value))
	if err != nil {
		return err
	}
	if status, payload := statemachine.DecodeResult(res); status != statemachine.KVOK {
		return writeErr("put", key, status, payload)
	}
	return nil
}

// Delete removes one key; found reports whether it existed.
func (kv *KV) Delete(key string) (found bool, err error) {
	res, err := kv.inv.Invoke(statemachine.EncodeDelete(key))
	if err != nil {
		return false, err
	}
	switch status, payload := statemachine.DecodeResult(res); status {
	case statemachine.KVOK:
		return true, nil
	case statemachine.KVNotFound:
		return false, nil
	default:
		return false, writeErr("delete", key, status, payload)
	}
}

// Add atomically adds delta to a uint64-encoded value and returns the
// new sum (see statemachine.EncodeAdd).
func (kv *KV) Add(key string, delta int64) (uint64, error) {
	res, err := kv.inv.Invoke(statemachine.EncodeAdd(key, delta))
	if err != nil {
		return 0, err
	}
	status, v := statemachine.DecodeResult(res)
	if status != statemachine.KVOK {
		return 0, writeErr("add", key, status, v)
	}
	return statemachine.DecodeCounter(v)
}

// Scan returns up to limit pairs of the half-open key range [lo, hi) in
// ascending key order (hi == "" means no upper bound; limit <= 0 means
// the protocol maximum). more reports that the range holds further keys
// past the last returned one — resume from its successor. Against a
// sharded Router the scan streams per-shard continuations and
// merge-sorts them; against a single group it pages through the owner's
// continuation flag.
func (kv *KV) Scan(lo, hi string, limit int, opts ReadOptions) (pairs []statemachine.ScanPair, more bool, err error) {
	if limit <= 0 || limit > statemachine.MaxScanLimit {
		limit = statemachine.MaxScanLimit
	}
	if s, ok := kv.inv.(Scanner); ok {
		return s.Scan(lo, hi, limit, opts)
	}
	cursor := lo
	for {
		res, err := kv.read(statemachine.EncodeScan(cursor, hi, limit-len(pairs)), opts)
		if err != nil {
			return nil, false, err
		}
		page, pageMore, err := statemachine.DecodeScanResult(res)
		if err != nil {
			return nil, false, err
		}
		pairs = append(pairs, page...)
		if !pageMore {
			return pairs, false, nil
		}
		if len(pairs) >= limit {
			return pairs, true, nil
		}
		if len(page) == 0 {
			return nil, false, fmt.Errorf("client: scan stalled at %q with a continuation but no results", cursor)
		}
		cursor = page[len(page)-1].Key + "\x00"
	}
}
