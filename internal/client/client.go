// Package client implements the client side of every protocol in this
// repository. A client signs requests with its own key, tracks the
// current primary through the mode and view numbers replicas echo in
// their REPLY messages (Section 5.1), retransmits by broadcasting after
// a timeout, and accepts a result only once the protocol-specific reply
// quorum is reached:
//
//   - SeeMoRe Lion: one reply signed by a trusted (private-cloud)
//     replica; after a retransmission, one trusted reply or m+1 matching
//     public replies.
//   - SeeMoRe Dog/Peacock: 2m+1 matching replies from distinct public
//     replicas; m+1 after a retransmission.
//   - Paxos: one reply (all replicas are trusted).
//   - PBFT: f+1 matching replies.
//   - S-UpRight: m+1 matching replies.
package client

//lint:file-allow clockcheck client-side retry timers and staleness observation run on the host clock by design; replicas never see these timestamps

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/crypto"
	"repro/internal/ids"
	"repro/internal/message"
	"repro/internal/transport"
)

// ErrTimeout is returned when a request exhausts its retries without
// reaching a reply quorum.
var ErrTimeout = errors.New("client: request timed out")

// ErrCanceled is returned by InvokeCancel when the caller's cancel
// channel closes before a reply quorum is reached. The request may
// still execute — cancellation abandons the wait, not the operation.
var ErrCanceled = errors.New("client: request canceled")

// errEndpointClosed reports a client whose transport endpoint shut down
// under it.
var errEndpointClosed = errors.New("client: endpoint closed")

// maxRetryWait caps a backoff-grown retransmit wait. Without it,
// Backoff > 1 composed with the default 20-retry budget turns an
// unreachable cluster into a wait of ClientRetry·2²⁰ — the cap keeps
// the worst-case Invoke latency proportional to the retry budget.
const maxRetryWait = time.Minute

// Policy decides when collected replies constitute a committed result.
// Implementations inspect only validated replies (signature checked,
// timestamp matched).
type Policy interface {
	// Primary returns the replicas to contact first for a fresh request.
	Primary() []ids.ReplicaID
	// All returns every replica (the retransmission broadcast set).
	All() []ids.ReplicaID
	// Done inspects the validated replies gathered so far and returns
	// the accepted result. retried reports whether the request has been
	// broadcast (which weakens the required quorum in SeeMoRe).
	Done(replies map[ids.ReplicaID]*message.Message, retried bool) ([]byte, bool)
	// Observe lets the policy update its primary belief from an accepted
	// reply set.
	Observe(replies map[ids.ReplicaID]*message.Message)
}

// Client issues requests and awaits reply quorums. Not safe for
// concurrent use; run one Client per goroutine (the benchmarks do).
type Client struct {
	id         ids.ClientID
	suite      crypto.Suite
	ep         transport.Endpoint
	policy     Policy
	retry      time.Duration
	maxRetries int
	backoff    float64

	ts     uint64
	seeded bool // ts started from config.Client.InitialTimestamp

	// Fast-read freshness tracking (read.go): the monotonic floor every
	// stale read must clear, the observation log backing MaxStaleness
	// bounds, and the follower rotation cursor.
	readFloor uint64
	wmLog     []wmObs
	staleRR   int

	// seenEpoch is the highest placement epoch stamped on any validated
	// reply — the passive signal that the cluster's placement moved and
	// the router's cache may be stale.
	seenEpoch uint64
}

// New assembles a client from a policy with the default retry behavior
// (config.DefaultMaxRetries broadcasts at a fixed Timing.ClientRetry
// interval).
func New(id ids.ClientID, suite crypto.Suite, network transport.Network, policy Policy, timing config.Timing) *Client {
	return NewWithConfig(id, suite, network, policy, timing, config.Client{})
}

// NewWithConfig assembles a client with explicit retry knobs; the zero
// cc is identical to New.
func NewWithConfig(id ids.ClientID, suite crypto.Suite, network transport.Network, policy Policy, timing config.Timing, cc config.Client) *Client {
	cc = cc.Normalized(timing)
	return &Client{
		id:         id,
		suite:      suite,
		ep:         network.Endpoint(transport.ClientAddr(id)),
		policy:     policy,
		retry:      cc.RetryTimeout,
		maxRetries: cc.MaxRetries,
		backoff:    cc.Backoff,
		ts:         cc.InitialTimestamp,
		seeded:     cc.InitialTimestamp > 0,
	}
}

// ID returns the client identity.
func (c *Client) ID() ids.ClientID { return c.id }

// Timestamp returns the timestamp of the last issued request (or the
// initial seed before the first one).
func (c *Client) Timestamp() uint64 { return c.ts }

// AllocateTimestamp consumes and returns the next request timestamp
// without issuing a request. The transaction coordinator mints
// transaction ids from it, so txn sequence numbers and request
// timestamps share one monotonic counter — seeding
// config.Client.InitialTimestamp above a previous run therefore makes
// both fresh, with no separate rule for transaction ids.
func (c *Client) AllocateTimestamp() uint64 {
	c.ts++
	return c.ts
}

// Close detaches the client's endpoint.
func (c *Client) Close() { c.ep.Close() }

// Invoke executes one state-machine operation and blocks until the
// reply quorum accepts a result or the retry budget is exhausted.
func (c *Client) Invoke(op []byte) ([]byte, error) {
	return c.InvokeCancel(op, nil)
}

// InvokeCancel is Invoke with an early-exit signal: when cancel closes,
// the wait is abandoned with ErrCanceled (a nil channel never fires and
// is equivalent to Invoke). The router's fan-out calls use it so one
// group's failure stops the sibling waits immediately instead of
// letting each run out its own retry budget.
func (c *Client) InvokeCancel(op []byte, cancel <-chan struct{}) ([]byte, error) {
	c.ts++
	req := &message.Request{Op: op, Timestamp: c.ts, Client: c.id}
	req.Sig = c.suite.Sign(crypto.ClientPrincipal(int64(c.id)), req.SignedBytes())
	wire := message.Marshal(&message.Message{Kind: message.KindRequest, From: -1, Request: req})

	send := func(targets []ids.ReplicaID) {
		for _, r := range targets {
			c.ep.Send(transport.ReplicaAddr(r), wire)
		}
	}
	send(c.policy.Primary())

	replies := make(map[ids.ReplicaID]*message.Message)
	retried := false
	wait := c.retry
	deadline := time.NewTimer(wait)
	defer deadline.Stop()

	for attempt := 0; ; {
		select {
		case <-cancel:
			return nil, fmt.Errorf("%w (client %d, ts %d)", ErrCanceled, c.id, c.ts)
		case env, ok := <-c.ep.Inbox():
			if !ok {
				return nil, errEndpointClosed
			}
			rep := c.validReply(env, c.ts)
			if rep == nil {
				continue
			}
			c.noteWatermark(rep.Watermark, time.Now())
			replies[rep.From] = rep
			if result, ok := c.policy.Done(replies, retried); ok {
				c.policy.Observe(replies)
				c.advanceFloor(replies, result)
				return result, nil
			}
		case <-deadline.C:
			attempt++
			if attempt > c.maxRetries {
				// A zero-seeded timestamp counter is the classic silent
				// failure against a durable cluster: a restarted process
				// reusing this client id replays timestamps the replicated
				// client table has already seen, and replicas drop the
				// requests without any reply. Surface the likely cause.
				if !c.seeded {
					return nil, fmt.Errorf("%w (client %d, ts %d; stale timestamp? a reused client id against a durable cluster needs config.Client.InitialTimestamp seeded above its previous run)", ErrTimeout, c.id, c.ts)
				}
				return nil, fmt.Errorf("%w (client %d, ts %d)", ErrTimeout, c.id, c.ts)
			}
			// Timeout: suspect the primary and broadcast to everyone
			// (Section 5.1's client recovery path).
			retried = true
			send(c.policy.All())
			if result, ok := c.policy.Done(replies, retried); ok {
				c.policy.Observe(replies)
				c.advanceFloor(replies, result)
				return result, nil
			}
			if c.backoff > 1 {
				wait = time.Duration(float64(wait) * c.backoff)
				if wait > maxRetryWait {
					wait = maxRetryWait
				}
			}
			deadline.Reset(wait)
		}
	}
}

// validReply checks envelope provenance, decodes, and verifies the
// replica's signature and the echoed timestamp.
func (c *Client) validReply(env transport.Envelope, ts uint64) *message.Message {
	if env.From.IsClient() {
		return nil
	}
	m, err := message.Unmarshal(env.Frame)
	if err != nil || m.Kind != message.KindReply {
		return nil
	}
	if m.From != env.From.Replica() || m.Client != c.id || m.Timestamp != ts {
		return nil
	}
	if !c.suite.Verify(crypto.ReplicaPrincipal(int(m.From)), m.SignedBytes(), m.Sig) {
		return nil
	}
	if m.Epoch > c.seenEpoch {
		c.seenEpoch = m.Epoch
	}
	return m
}

// LastSeenEpoch returns the highest placement epoch any validated reply
// carried. The router compares it against its placement cache and
// refreshes from the meta group when the cluster has moved ahead.
func (c *Client) LastSeenEpoch() uint64 { return c.seenEpoch }

// ---------------------------------------------------------------------------
// SeeMoRe policy

// SeeMoRePolicy tracks the mode and view of a SeeMoRe cluster and
// applies the per-mode reply quorums of Sections 5.1–5.3.
type SeeMoRePolicy struct {
	mb   ids.Membership
	mode ids.Mode
	view ids.View
}

// NewSeeMoRePolicy starts with the cluster's initial mode at view 0.
func NewSeeMoRePolicy(mb ids.Membership, initialMode ids.Mode) *SeeMoRePolicy {
	return &SeeMoRePolicy{mb: mb, mode: initialMode}
}

// Primary implements Policy.
func (p *SeeMoRePolicy) Primary() []ids.ReplicaID {
	return []ids.ReplicaID{p.mb.Primary(p.mode, p.view)}
}

// All implements Policy.
func (p *SeeMoRePolicy) All() []ids.ReplicaID { return p.mb.All() }

// Done implements Policy.
func (p *SeeMoRePolicy) Done(replies map[ids.ReplicaID]*message.Message, retried bool) ([]byte, bool) {
	// One reply from a trusted replica is always definitive: trusted
	// nodes never lie, and they only reply after execution. This covers
	// the Lion normal case and the "reply from the private cloud" retry
	// acceptance rule.
	for from, m := range replies {
		if p.mb.IsTrusted(from) {
			return m.Result, true
		}
	}
	// Otherwise count matching public replies: 2m+1 normally (Dog and
	// Peacock), m+1 after a retransmission.
	need := 2*p.mb.M() + 1
	if retried {
		need = p.mb.M() + 1
	}
	return matching(replies, need, func(from ids.ReplicaID) bool { return p.mb.IsUntrusted(from) })
}

// Observe implements Policy: adopt the mode and view echoed by the
// accepted replies so the next request goes straight to the current
// primary. A single trusted replica's word is adopted outright;
// otherwise the (mode, view) pair must be echoed by m+1 public replies
// so at least one correct replica vouches for it.
func (p *SeeMoRePolicy) Observe(replies map[ids.ReplicaID]*message.Message) {
	// Iterate trusted replies deterministically and adopt the freshest:
	// map-iteration order must never decide which belief wins, or the
	// deterministic simulation cannot reproduce client schedules.
	var trusted *message.Message
	for from, m := range replies {
		if p.mb.IsTrusted(from) && m.Mode.Valid() {
			if trusted == nil || m.View > trusted.View ||
				(m.View == trusted.View && m.From < trusted.From) {
				trusted = m
			}
		}
	}
	if trusted != nil {
		if trusted.View > p.view || (trusted.View == p.view && trusted.Mode != p.mode) {
			p.view, p.mode = trusted.View, trusted.Mode
		}
		return
	}
	type mv struct {
		mode ids.Mode
		view ids.View
	}
	counts := make(map[mv]int)
	for from, m := range replies {
		if p.mb.IsUntrusted(from) && m.Mode.Valid() {
			counts[mv{m.Mode, m.View}]++
		}
	}
	// Among credible (mode, view) pairs, adopt the highest view (mode
	// breaks the tie) rather than whichever the map yields last.
	var best mv
	found := false
	for k, n := range counts {
		if n >= p.mb.M()+1 && k.view >= p.view {
			if !found || k.view > best.view || (k.view == best.view && k.mode > best.mode) {
				best, found = k, true
			}
		}
	}
	if found {
		p.view, p.mode = best.view, best.mode
	}
}

// LeaseTarget implements ReadPolicy: in the trusted-primary modes the
// primary is the lease holder; the Peacock primary is untrusted, so no
// replica may serve a linearizable read on its own say-so.
func (p *SeeMoRePolicy) LeaseTarget() (ids.ReplicaID, bool) {
	if p.mode == ids.Peacock {
		return 0, false
	}
	return p.mb.Primary(p.mode, p.view), true
}

// StaleTargets implements ReadPolicy: only a trusted (private-cloud)
// replica's lone word on its executed prefix is worth anything.
func (p *SeeMoRePolicy) StaleTargets() []ids.ReplicaID { return p.mb.Trusted() }

// Mode returns the client's current belief of the cluster mode.
func (p *SeeMoRePolicy) Mode() ids.Mode { return p.mode }

// View returns the client's current belief of the view.
func (p *SeeMoRePolicy) View() ids.View { return p.view }

// ---------------------------------------------------------------------------
// Generic quorum policy (baselines)

// GenericPolicy serves the baseline protocols: a fixed replica set, a
// view-indexed primary, and flat matching-reply quorums.
type GenericPolicy struct {
	replicas []ids.ReplicaID
	primary  func(view ids.View) ids.ReplicaID
	quorum   int
	retryQ   int
	view     ids.View
}

// NewGenericPolicy builds a baseline reply policy. quorum and retryQ are
// the matching-reply counts required before and after retransmission.
func NewGenericPolicy(n int, primary func(view ids.View) ids.ReplicaID, quorum, retryQ int) *GenericPolicy {
	rs := make([]ids.ReplicaID, n)
	for i := range rs {
		rs[i] = ids.ReplicaID(i)
	}
	return &GenericPolicy{replicas: rs, primary: primary, quorum: quorum, retryQ: retryQ}
}

// Primary implements Policy.
func (p *GenericPolicy) Primary() []ids.ReplicaID {
	return []ids.ReplicaID{p.primary(p.view)}
}

// All implements Policy.
func (p *GenericPolicy) All() []ids.ReplicaID { return p.replicas }

// Done implements Policy.
func (p *GenericPolicy) Done(replies map[ids.ReplicaID]*message.Message, retried bool) ([]byte, bool) {
	need := p.quorum
	if retried {
		need = p.retryQ
	}
	return matching(replies, need, func(ids.ReplicaID) bool { return true })
}

// Observe implements Policy: follow the highest view echoed by a
// majority-credible reply set (for crash-only baselines any reply will
// do; Byzantine baselines call Done first, which already established a
// quorum).
func (p *GenericPolicy) Observe(replies map[ids.ReplicaID]*message.Message) {
	for _, m := range replies {
		if m.View > p.view {
			p.view = m.View
		}
	}
}

// matching returns a result echoed by at least need eligible replicas.
func matching(replies map[ids.ReplicaID]*message.Message, need int, eligible func(ids.ReplicaID) bool) ([]byte, bool) {
	counts := make(map[string]int, len(replies))
	for from, m := range replies {
		if !eligible(from) {
			continue
		}
		k := string(m.Result)
		counts[k]++
		if counts[k] >= need {
			return m.Result, true
		}
	}
	return nil, false
}
