package client

import (
	"errors"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/crypto"
	"repro/internal/ids"
	"repro/internal/message"
	"repro/internal/transport"
)

// fakeReplica answers requests at a transport endpoint with scripted
// replies, letting the client logic be tested without a real cluster.
type fakeReplica struct {
	id    ids.ReplicaID
	suite crypto.Suite
	ep    transport.Endpoint
	// respond builds a reply for a request; nil means stay silent.
	respond func(req *message.Request) *message.Message
	done    chan struct{}
}

func startFake(net transport.Network, suite crypto.Suite, id ids.ReplicaID,
	respond func(req *message.Request) *message.Message) *fakeReplica {
	f := &fakeReplica{
		id: id, suite: suite,
		ep:      net.Endpoint(transport.ReplicaAddr(id)),
		respond: respond,
		done:    make(chan struct{}),
	}
	go func() {
		for env := range f.ep.Inbox() {
			m, err := message.Unmarshal(env.Frame)
			if err != nil || m.Kind != message.KindRequest || m.Request == nil {
				continue
			}
			rep := f.respond(m.Request)
			if rep == nil {
				continue
			}
			rep.From = f.id
			rep.Sig = f.suite.Sign(crypto.ReplicaPrincipal(int(f.id)), rep.SignedBytes())
			f.ep.Send(env.From, message.Marshal(rep))
		}
		close(f.done)
	}()
	return f
}

func okReply(mode ids.Mode, view ids.View, result []byte) func(*message.Request) *message.Message {
	return func(req *message.Request) *message.Message {
		return &message.Message{
			Kind: message.KindReply, View: view, Mode: mode,
			Timestamp: req.Timestamp, Client: req.Client, Result: result,
		}
	}
}

func testTiming() config.Timing {
	return config.Timing{
		ViewChange:       50 * time.Millisecond,
		ClientRetry:      60 * time.Millisecond,
		CheckpointPeriod: 16,
		HighWaterMarkLag: 64,
	}
}

func TestLionSingleTrustedReplySuffices(t *testing.T) {
	mb := ids.MustMembership(2, 4, 1, 1)
	suite := crypto.NewEd25519Suite(1, mb.N(), 4)
	net := transport.NewSimNetwork(transport.SimConfig{Seed: 1, PrivateSize: 2})
	defer net.Close()
	startFake(net, suite, 0, okReply(ids.Lion, 0, []byte("r")))

	c := New(0, suite, net, NewSeeMoRePolicy(mb, ids.Lion), testTiming())
	res, err := c.Invoke([]byte("op"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "r" {
		t.Fatalf("result %q", res)
	}
}

func TestDogNeedsMatchingProxyQuorum(t *testing.T) {
	mb := ids.MustMembership(2, 4, 1, 1)
	suite := crypto.NewEd25519Suite(2, mb.N(), 4)
	net := transport.NewSimNetwork(transport.SimConfig{Seed: 2, PrivateSize: 2})
	defer net.Close()
	// Initial primary of Dog view 0 is replica 0; it must relay. Here we
	// simply let all public nodes answer the broadcast: the client first
	// times out on the silent primary, then broadcasts.
	for id := 2; id <= 5; id++ {
		rid := ids.ReplicaID(id)
		if rid == 5 {
			// A Byzantine replica answers garbage; 2m+1=3 correct
			// matching replies must still win.
			startFake(net, suite, rid, okReply(ids.Dog, 0, []byte("evil")))
			continue
		}
		startFake(net, suite, rid, okReply(ids.Dog, 0, []byte("good")))
	}

	c := New(1, suite, net, NewSeeMoRePolicy(mb, ids.Dog), testTiming())
	res, err := c.Invoke([]byte("op"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "good" {
		t.Fatalf("client accepted %q", res)
	}
}

func TestClientRejectsBadSignatures(t *testing.T) {
	mb := ids.MustMembership(2, 4, 1, 1)
	suite := crypto.NewEd25519Suite(3, mb.N(), 4)
	evilSuite := crypto.NewEd25519Suite(99, mb.N(), 4)
	net := transport.NewSimNetwork(transport.SimConfig{Seed: 3, PrivateSize: 2})
	defer net.Close()
	// Replica 0 signs with the wrong key; its replies must be ignored,
	// so the request times out.
	startFake(net, evilSuite, 0, okReply(ids.Lion, 0, []byte("forged")))

	timing := testTiming()
	timing.ClientRetry = 20 * time.Millisecond
	c := New(2, suite, net, NewSeeMoRePolicy(mb, ids.Lion), timing)
	_, err := c.Invoke([]byte("op"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestClientIgnoresWrongTimestamp(t *testing.T) {
	mb := ids.MustMembership(2, 4, 1, 1)
	suite := crypto.NewEd25519Suite(4, mb.N(), 4)
	net := transport.NewSimNetwork(transport.SimConfig{Seed: 4, PrivateSize: 2})
	defer net.Close()
	startFake(net, suite, 0, func(req *message.Request) *message.Message {
		return &message.Message{
			Kind: message.KindReply, Mode: ids.Lion,
			Timestamp: req.Timestamp + 1, // stale/echoed wrong
			Client:    req.Client, Result: []byte("r"),
		}
	})
	timing := testTiming()
	timing.ClientRetry = 20 * time.Millisecond
	c := New(3, suite, net, NewSeeMoRePolicy(mb, ids.Lion), timing)
	if _, err := c.Invoke([]byte("op")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestSeeMoRePolicyFollowsModeAndView(t *testing.T) {
	mb := ids.MustMembership(2, 4, 1, 1)
	p := NewSeeMoRePolicy(mb, ids.Lion)
	if got := p.Primary(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("initial primary = %v", got)
	}
	// A trusted reply carrying view 3 / Dog moves the belief.
	replies := map[ids.ReplicaID]*message.Message{
		1: {Kind: message.KindReply, From: 1, View: 3, Mode: ids.Dog},
	}
	p.Observe(replies)
	if p.Mode() != ids.Dog || p.View() != 3 {
		t.Fatalf("belief = %s/%d", p.Mode(), p.View())
	}
	if got := p.Primary(); got[0] != mb.Primary(ids.Dog, 3) {
		t.Fatalf("primary = %v", got)
	}
	// m+1 matching public replies can also move it (no trusted reply).
	replies = map[ids.ReplicaID]*message.Message{
		2: {Kind: message.KindReply, From: 2, View: 5, Mode: ids.Peacock},
		3: {Kind: message.KindReply, From: 3, View: 5, Mode: ids.Peacock},
	}
	p.Observe(replies)
	if p.Mode() != ids.Peacock || p.View() != 5 {
		t.Fatalf("belief = %s/%d", p.Mode(), p.View())
	}
	// A single public reply (below m+1) must not move it.
	replies = map[ids.ReplicaID]*message.Message{
		4: {Kind: message.KindReply, From: 4, View: 9, Mode: ids.Lion},
	}
	p.Observe(replies)
	if p.View() == 9 {
		t.Fatal("single public reply moved the belief")
	}
	if len(p.All()) != mb.N() {
		t.Fatalf("All() = %d replicas", len(p.All()))
	}
}

func TestSeeMoRePolicyDone(t *testing.T) {
	mb := ids.MustMembership(2, 4, 1, 1)
	p := NewSeeMoRePolicy(mb, ids.Dog)
	mk := func(from ids.ReplicaID, result string) *message.Message {
		return &message.Message{Kind: message.KindReply, From: from, Result: []byte(result)}
	}
	// Two matching public replies: not enough (2m+1 = 3).
	replies := map[ids.ReplicaID]*message.Message{2: mk(2, "x"), 3: mk(3, "x")}
	if _, ok := p.Done(replies, false); ok {
		t.Fatal("2 public replies accepted, need 3")
	}
	// Retried: m+1 = 2 suffice.
	if res, ok := p.Done(replies, true); !ok || string(res) != "x" {
		t.Fatal("retried weak quorum not accepted")
	}
	// Third matching: accepted.
	replies[4] = mk(4, "x")
	if res, ok := p.Done(replies, false); !ok || string(res) != "x" {
		t.Fatal("full public quorum not accepted")
	}
	// A trusted reply always wins outright.
	if res, ok := p.Done(map[ids.ReplicaID]*message.Message{0: mk(0, "t")}, false); !ok || string(res) != "t" {
		t.Fatal("trusted reply not accepted")
	}
	// Mismatched public replies never reach quorum.
	replies = map[ids.ReplicaID]*message.Message{2: mk(2, "a"), 3: mk(3, "b"), 4: mk(4, "c")}
	if _, ok := p.Done(replies, false); ok {
		t.Fatal("mismatched replies accepted")
	}
}

func TestGenericPolicy(t *testing.T) {
	p := NewGenericPolicy(4, func(v ids.View) ids.ReplicaID {
		return ids.ReplicaID(int(v % 4))
	}, 2, 1)
	if got := p.Primary(); got[0] != 0 {
		t.Fatalf("primary = %v", got)
	}
	if len(p.All()) != 4 {
		t.Fatalf("All = %v", p.All())
	}
	mk := func(from ids.ReplicaID, result string, view ids.View) *message.Message {
		return &message.Message{Kind: message.KindReply, From: from, Result: []byte(result), View: view}
	}
	replies := map[ids.ReplicaID]*message.Message{1: mk(1, "x", 2)}
	if _, ok := p.Done(replies, false); ok {
		t.Fatal("1 reply accepted with quorum 2")
	}
	if res, ok := p.Done(replies, true); !ok || string(res) != "x" {
		t.Fatal("retry quorum 1 not accepted")
	}
	replies[2] = mk(2, "x", 2)
	if _, ok := p.Done(replies, false); !ok {
		t.Fatal("quorum 2 not accepted")
	}
	p.Observe(replies)
	if got := p.Primary(); got[0] != 2 {
		t.Fatalf("primary after observing view 2 = %v", got)
	}
}
