package client

//lint:file-allow clockcheck epoch-fence retry pacing is a client-side real-time wait, not protocol time

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ids"
	"repro/internal/placement"
	"repro/internal/statemachine"
	"repro/internal/txn"
)

// Partitioner is the key→group mapping the router consults; the
// concrete hash-range implementation lives in internal/shard (the
// router only needs the contract, which keeps this package free of a
// dependency on the sharding layer).
type Partitioner interface {
	Shards() int
	Owner(key string) ids.GroupID
}

// RangePartitioner is the optional capability a Partitioner implements
// when it can prune which groups a key-range scan must visit. A
// hash-range partitioner scatters every key range across all groups, so
// its implementation returns everyone; a future range partitioner would
// return only the owners of [lo, hi).
type RangePartitioner interface {
	RangeGroups(lo, hi string) []ids.GroupID
}

// Placement is the router's single routing entry point: both the static
// Partitioner (wrapped by staticPlacement) and the elastic
// placement.Cache satisfy it, so every routing decision — point ops,
// fan-outs, scans, transaction partitioning — flows through one
// interface regardless of whether the deployment can reshard.
type Placement interface {
	Shards() int
	Owner(key string) ids.GroupID
	RangeGroups(lo, hi string) []ids.GroupID
}

// staticPlacement adapts a fixed Partitioner to the Placement contract,
// preserving the pre-elastic behavior bit for bit: same owners, and
// scans visit every group unless the partitioner itself can prune.
type staticPlacement struct {
	Partitioner
}

func (s staticPlacement) RangeGroups(lo, hi string) []ids.GroupID {
	if rp, ok := s.Partitioner.(RangePartitioner); ok {
		return rp.RangeGroups(lo, hi)
	}
	out := make([]ids.GroupID, s.Shards())
	for g := range out {
		out[g] = ids.GroupID(g)
	}
	return out
}

// ErrUnroutable reports an operation the router cannot map to an owner
// group: no routing key is extractable from it. Malformed frames used
// to fall through to group 0 silently, which hid client-side encoding
// bugs behind a KVBadOp from an arbitrary shard.
var ErrUnroutable = errors.New("client: operation has no routing key")

// Router is the shard-aware client of a sharded deployment: one
// underlying Client (with its own Policy tracking that group's mode,
// view and primary) per consensus group. Single-key operations route to
// their owner group; multi-key reads fan out across groups in parallel.
// Like Client, a Router is not safe for concurrent use — run one per
// goroutine.
type Router struct {
	clients []*Client // indexed by GroupID
	place   Placement
	keyOf   func(op []byte) (string, bool)
	coord   *txn.Coordinator // lazily built by Txn/MultiPut/ResolveTx
	// cache is non-nil on elastic deployments: the newest placement map
	// observed, refreshed from KVWrongEpoch rejections. Static routers
	// leave it nil and never retry on epoch grounds.
	cache *placement.Cache
	// OnWrongEpoch, when set, observes every epoch rejection the router
	// absorbs (the CLI's -v wiring; tests count reroutes through it).
	OnWrongEpoch func(g ids.GroupID, m *placement.Map)
}

// Epoch-rejection retry budget. A rejection normally resolves in one
// hop (the attached map points at the new owner); the longer tail is a
// key inside a range that is mid-handoff, where the new owner keeps
// fencing until the final install page commits — that is the moving
// range's bounded unavailability, and the budget must ride it out.
const (
	maxEpochRetries = 400
	epochRetryWait  = 25 * time.Millisecond
)

// NewRouter assembles a router from per-group clients (index g serves
// group g; every group must be covered). keyOf extracts the routing key
// from an operation; nil uses the KV codec (statemachine.KVOpKey).
// Operations without an extractable key fail with ErrUnroutable.
func NewRouter(clients []*Client, part Partitioner, keyOf func(op []byte) (string, bool)) (*Router, error) {
	if part == nil {
		return nil, fmt.Errorf("client: router needs a partitioner")
	}
	return newRouter(clients, staticPlacement{part}, nil, keyOf)
}

// NewElasticRouter assembles a router over a placement cache instead of
// a static partitioner: routing follows the newest placement map the
// cache holds, and stale-epoch rejections refresh it and reroute. The
// client set covers every provisioned group — spares included, since a
// split can make any of them an owner while this router is running.
func NewElasticRouter(clients []*Client, cache *placement.Cache, keyOf func(op []byte) (string, bool)) (*Router, error) {
	if cache == nil {
		return nil, fmt.Errorf("client: elastic router needs a placement cache")
	}
	return newRouter(clients, cache, cache, keyOf)
}

func newRouter(clients []*Client, place Placement, cache *placement.Cache, keyOf func(op []byte) (string, bool)) (*Router, error) {
	if len(clients) != place.Shards() {
		return nil, fmt.Errorf("client: router has %d clients for %d shards", len(clients), place.Shards())
	}
	for g, cl := range clients {
		if cl == nil {
			return nil, fmt.Errorf("client: router missing the client for group %d", g)
		}
	}
	if keyOf == nil {
		keyOf = statemachine.KVOpKey
	}
	return &Router{clients: clients, place: place, keyOf: keyOf, cache: cache}, nil
}

// Shards returns the number of groups the router spans.
func (r *Router) Shards() int { return len(r.clients) }

// OwnerOf returns the group an operation routes to, or ErrUnroutable
// when no key is extractable from it (a malformed op, or a range scan —
// which addresses every group; use Scan).
func (r *Router) OwnerOf(op []byte) (ids.GroupID, error) {
	key, ok := r.keyOf(op)
	if !ok {
		return 0, fmt.Errorf("%w (op of %d bytes)", ErrUnroutable, len(op))
	}
	return r.place.Owner(key), nil
}

// noteWrongEpoch absorbs one KVWrongEpoch rejection from group g:
// adopt the attached (authoritative, consensus-ordered) map when it is
// newer, tell the observer, and report whether the caller should retry
// and whether the routing actually changed (when it did not, the key is
// mid-handoff and the retry should back off instead of spinning).
func (r *Router) noteWrongEpoch(g ids.GroupID, payload []byte) (updated bool, err error) {
	if r.cache == nil {
		// A static deployment never legitimately sees the fence; treat
		// it as the protocol error it is.
		return false, fmt.Errorf("client: group %v rejected a request for epoch reasons on a static deployment", g)
	}
	m, err := placement.DecodeMap(payload)
	if err != nil {
		return false, fmt.Errorf("client: malformed placement map in epoch rejection from %v: %w", g, err)
	}
	updated = r.cache.Update(m)
	if r.OnWrongEpoch != nil {
		r.OnWrongEpoch(g, m)
	}
	return updated, nil
}

// invokeRouted runs op against its owner group, absorbing stale-epoch
// rejections: each one refreshes the placement cache from the attached
// map and reroutes. Every attempt is a fresh request (new timestamp) to
// the then-current owner; the rejected attempt executed as a pure
// rejection on the old owner, so rerouting never duplicates an effect.
func (r *Router) invokeRouted(key string, op []byte, cancel <-chan struct{}, do func(g ids.GroupID) ([]byte, error)) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		g := r.place.Owner(key)
		res, err := do(g)
		if err != nil {
			return nil, err
		}
		status, payload := statemachine.DecodeResult(res)
		if status != statemachine.KVWrongEpoch {
			return res, nil
		}
		updated, err := r.noteWrongEpoch(g, payload)
		if err != nil {
			return nil, err
		}
		if attempt >= maxEpochRetries {
			return nil, fmt.Errorf("client: key %q still fenced after %d epoch retries", key, attempt)
		}
		if !updated && r.place.Owner(key) == g {
			// Same owner, same map: the range is mid-handoff (sealed at
			// the source or still installing at the target). Wait out a
			// slice of the handoff window.
			select {
			case <-cancel:
				return nil, ErrCanceled
			case <-time.After(epochRetryWait):
			}
		}
	}
}

// Invoke routes one operation to its owner group and blocks for that
// group's reply quorum, exactly as Client.Invoke does against an
// unsharded cluster. On an elastic deployment stale-epoch rejections
// are absorbed: the router refreshes its placement cache from the
// rejection and reroutes, so callers never see a misrouted result.
func (r *Router) Invoke(op []byte) ([]byte, error) {
	return r.InvokeCancel(op, nil)
}

// InvokeCancel is Invoke with an early-exit signal, completing the
// Invoker surface (the 2PC coordinator cancels sibling legs through
// it).
func (r *Router) InvokeCancel(op []byte, cancel <-chan struct{}) ([]byte, error) {
	key, ok := r.keyOf(op)
	if !ok {
		return nil, fmt.Errorf("%w (op of %d bytes)", ErrUnroutable, len(op))
	}
	return r.invokeRouted(key, op, cancel, func(g ids.GroupID) ([]byte, error) {
		return r.clients[g].InvokeCancel(op, cancel)
	})
}

// Read routes a single-key read to its owner group at the requested
// consistency level (see Client.Read), rerouting on stale-epoch
// rejections like Invoke. Range scans have no single owner; use Scan.
func (r *Router) Read(op []byte, opts ReadOptions) ([]byte, error) {
	key, ok := r.keyOf(op)
	if !ok {
		return nil, fmt.Errorf("%w (op of %d bytes)", ErrUnroutable, len(op))
	}
	return r.invokeRouted(key, op, nil, func(g ids.GroupID) ([]byte, error) {
		return r.clients[g].Read(op, opts)
	})
}

// scanGroups returns the groups a scan of [lo, hi) must visit. Elastic
// deployments visit every provisioned group rather than the cached
// map's owners: scans are served from committed local state and are
// not epoch-fenced, so a stale cache must not cause a freshly installed
// range to be skipped — an empty spare answers an empty page, which is
// cheap.
func (r *Router) scanGroups(lo, hi string) []ids.GroupID {
	if r.cache != nil {
		out := make([]ids.GroupID, len(r.clients))
		for g := range out {
			out[g] = ids.GroupID(g)
		}
		return out
	}
	return r.place.RangeGroups(lo, hi)
}

// Scan merge-streams the key range [lo, hi) across every involved
// group in ascending key order, up to limit pairs. Each group is read
// in pages through its own continuation token, so an arbitrarily large
// range never materializes anywhere at once; more reports that keys
// remain past the last returned one (resume from its successor). The
// consistency level applies per shard: a Stale merge is a union of
// per-shard bounded-staleness snapshots, not one cross-shard cut.
func (r *Router) Scan(lo, hi string, limit int, opts ReadOptions) (pairs []statemachine.ScanPair, more bool, err error) {
	if limit <= 0 || limit > statemachine.MaxScanLimit {
		limit = statemachine.MaxScanLimit
	}
	type shardStream struct {
		g    ids.GroupID
		buf  []statemachine.ScanPair
		next string // resume key of the shard's following page
		done bool   // shard exhausted (last page had no continuation)
	}
	// Per-shard page size: every group could in principle own the next
	// `limit` smallest keys, but paging keeps refills cheap.
	page := limit
	if page > 256 {
		page = 256
	}
	fill := func(s *shardStream) error {
		res, err := r.clients[s.g].Read(statemachine.EncodeScan(s.next, hi, page), opts)
		if err != nil {
			return fmt.Errorf("client: scan on group %v: %w", s.g, err)
		}
		buf, pageMore, err := statemachine.DecodeScanResult(res)
		if err != nil {
			return fmt.Errorf("client: scan on group %v: %w", s.g, err)
		}
		s.buf = buf
		if pageMore {
			if len(buf) == 0 {
				return fmt.Errorf("client: scan on group %v stalled with a continuation but no results", s.g)
			}
			s.next = buf[len(buf)-1].Key + "\x00"
		} else {
			s.done = true
		}
		return nil
	}
	streams := make([]*shardStream, 0, r.place.Shards())
	for _, g := range r.scanGroups(lo, hi) {
		s := &shardStream{g: g, next: lo}
		if err := fill(s); err != nil {
			return nil, false, err
		}
		streams = append(streams, s)
	}
	for len(pairs) < limit {
		// Pick the stream holding the smallest next key.
		var min *shardStream
		for _, s := range streams {
			if len(s.buf) == 0 {
				continue
			}
			if min == nil || s.buf[0].Key < min.buf[0].Key {
				min = s
			}
		}
		if min == nil {
			return pairs, false, nil // every shard exhausted
		}
		pairs = append(pairs, min.buf[0])
		min.buf = min.buf[1:]
		if len(min.buf) == 0 && !min.done {
			if err := fill(min); err != nil {
				return nil, false, err
			}
		}
	}
	for _, s := range streams {
		if len(s.buf) > 0 || !s.done {
			return pairs, true, nil
		}
	}
	return pairs, false, nil
}

// MultiGet reads several keys in one call, fanning the GETs out across
// their owner groups in parallel (one goroutine per involved group;
// keys within a group are read sequentially through that group's
// client). Results are returned in key order; a missing key yields a
// nil value. The first group error aborts the whole read: the sibling
// goroutines are canceled, so the call returns as soon as the error is
// observed instead of waiting out every other group's retry budget.
func (r *Router) MultiGet(keys []string) ([][]byte, error) {
	// The whole fan-out retries when any leg hits the epoch fence: the
	// rejection refreshed the cache, so the next pass partitions the
	// keys under the newer map. Bounded like every epoch retry.
	for attempt := 0; ; attempt++ {
		out, err := r.multiGetOnce(keys)
		var stale *epochStaleError
		if !errors.As(err, &stale) {
			return out, err
		}
		if attempt >= maxEpochRetries {
			return nil, fmt.Errorf("client: multi-get still fenced after %d epoch retries", attempt)
		}
		if !stale.updated {
			time.Sleep(epochRetryWait) // mid-handoff; see invokeRouted
		}
	}
}

// epochStaleError aborts one multiGetOnce pass; updated mirrors
// noteWrongEpoch's report so the retry knows whether to back off.
type epochStaleError struct{ updated bool }

func (e *epochStaleError) Error() string { return "client: multi-get leg hit a stale placement epoch" }

func (r *Router) multiGetOnce(keys []string) ([][]byte, error) {
	type slot struct {
		idx int
		key string
	}
	byGroup := make(map[ids.GroupID][]slot)
	for i, k := range keys {
		g := r.place.Owner(k)
		byGroup[g] = append(byGroup[g], slot{idx: i, key: k})
	}

	groups := make([]ids.GroupID, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	out := make([][]byte, len(keys)) // each slot written by exactly one goroutine
	err := txn.FanOut(groups, true, func(g ids.GroupID, cancel <-chan struct{}) error {
		for _, s := range byGroup[g] {
			select {
			case <-cancel: // a sibling group already failed
				return txn.ErrLegCanceled
			default:
			}
			res, err := r.clients[g].InvokeCancel(statemachine.EncodeGet(s.key), cancel)
			if err != nil {
				// Cancellation is the consequence of the first error,
				// not an error of its own.
				if errors.Is(err, ErrCanceled) {
					return txn.ErrLegCanceled
				}
				return fmt.Errorf("client: multi-get %q from %v: %w", s.key, g, err)
			}
			status, value := statemachine.DecodeResult(res)
			if status == statemachine.KVWrongEpoch {
				updated, err := r.noteWrongEpoch(g, value)
				if err != nil {
					return err
				}
				return &epochStaleError{updated: updated}
			}
			if status == statemachine.KVOK {
				out[s.idx] = append([]byte(nil), value...)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// coordinator lazily assembles the 2PC coordinator over the per-group
// clients. Transaction ids are minted from the group-0 client's
// timestamp counter (AllocateTimestamp), so they live in the same
// monotonic domain as request timestamps: seeding a restarted client's
// InitialTimestamp above its previous run makes both its requests and
// its transaction ids collision-free, with no separate rule to follow.
func (r *Router) coordinator() (*txn.Coordinator, error) {
	if r.coord != nil {
		return r.coord, nil
	}
	groups := make([]txn.Invoker, len(r.clients))
	for g, cl := range r.clients {
		groups[g] = cl
	}
	co, err := txn.New(r.clients[0].ID(), groups, r.place, r.clients[0].AllocateTimestamp)
	if err != nil {
		return nil, err
	}
	r.coord = co
	return co, nil
}

// Txn atomically applies a set of KV writes (EncodePut / EncodeDelete /
// EncodeAdd) that may span any number of shards, running two-phase
// commit over the owner groups (internal/txn). Either every shard
// applies all of its writes or no shard applies any. Lock conflicts
// with an abandoned transaction are resolved (presumed abort) and the
// transaction retried under a fresh id; txn.ErrAborted reports a
// transaction that left no effects anywhere.
func (r *Router) Txn(writes [][]byte) error {
	co, err := r.coordinator()
	if err != nil {
		return err
	}
	// The coordinator partitions by r.place, so after an epoch-fence
	// rejection refreshes the cache the retry re-partitions the writes
	// under the new map. The fence guarantees the rejected attempt
	// acquired nothing on the rejecting shard and the abort legs
	// released the rest, so the fresh-id retry is effect-free.
	for attempt := 0; ; attempt++ {
		err := co.Exec(writes)
		var stale *txn.EpochError
		if !errors.As(err, &stale) {
			return err
		}
		updated, nerr := r.noteWrongEpoch(stale.Group, stale.Placement)
		if nerr != nil {
			return nerr
		}
		if attempt >= maxEpochRetries {
			return fmt.Errorf("client: transaction still fenced after %d epoch retries: %w", attempt, err)
		}
		if !updated {
			time.Sleep(epochRetryWait) // mid-handoff; see invokeRouted
		}
	}
}

// MultiPut atomically writes several key/value pairs across their owner
// shards — the cross-shard companion of MultiGet.
func (r *Router) MultiPut(keys []string, values [][]byte) error {
	writes, err := txn.MultiPut(keys, values)
	if err != nil {
		return err
	}
	return r.Txn(writes)
}

// ResolveTx settles a possibly-abandoned transaction observed on group
// g (the id arrives in a KVLocked result payload, see
// statemachine.DecodeLockHolder): presumed abort unless the coordinator
// shard recorded a commit, then the finish legs run so every lock is
// released. It reports the settled outcome.
func (r *Router) ResolveTx(g ids.GroupID, id statemachine.TxID) (committed bool, err error) {
	co, err := r.coordinator()
	if err != nil {
		return false, err
	}
	return co.Resolve(g, id)
}

// Close closes every per-group client.
func (r *Router) Close() {
	for _, cl := range r.clients {
		cl.Close()
	}
}
