package client

import (
	"errors"
	"fmt"

	"repro/internal/ids"
	"repro/internal/statemachine"
	"repro/internal/txn"
)

// Partitioner is the key→group mapping the router consults; the
// concrete hash-range implementation lives in internal/shard (the
// router only needs the contract, which keeps this package free of a
// dependency on the sharding layer).
type Partitioner interface {
	Shards() int
	Owner(key string) ids.GroupID
}

// RangePartitioner is the optional capability a Partitioner implements
// when it can prune which groups a key-range scan must visit. A
// hash-range partitioner scatters every key range across all groups, so
// its implementation returns everyone; a future range partitioner would
// return only the owners of [lo, hi).
type RangePartitioner interface {
	RangeGroups(lo, hi string) []ids.GroupID
}

// ErrUnroutable reports an operation the router cannot map to an owner
// group: no routing key is extractable from it. Malformed frames used
// to fall through to group 0 silently, which hid client-side encoding
// bugs behind a KVBadOp from an arbitrary shard.
var ErrUnroutable = errors.New("client: operation has no routing key")

// Router is the shard-aware client of a sharded deployment: one
// underlying Client (with its own Policy tracking that group's mode,
// view and primary) per consensus group. Single-key operations route to
// their owner group; multi-key reads fan out across groups in parallel.
// Like Client, a Router is not safe for concurrent use — run one per
// goroutine.
type Router struct {
	clients []*Client // indexed by GroupID
	part    Partitioner
	keyOf   func(op []byte) (string, bool)
	coord   *txn.Coordinator // lazily built by Txn/MultiPut/ResolveTx
}

// NewRouter assembles a router from per-group clients (index g serves
// group g; every group must be covered). keyOf extracts the routing key
// from an operation; nil uses the KV codec (statemachine.KVOpKey).
// Operations without an extractable key fail with ErrUnroutable.
func NewRouter(clients []*Client, part Partitioner, keyOf func(op []byte) (string, bool)) (*Router, error) {
	if part == nil {
		return nil, fmt.Errorf("client: router needs a partitioner")
	}
	if len(clients) != part.Shards() {
		return nil, fmt.Errorf("client: router has %d clients for %d shards", len(clients), part.Shards())
	}
	for g, cl := range clients {
		if cl == nil {
			return nil, fmt.Errorf("client: router missing the client for group %d", g)
		}
	}
	if keyOf == nil {
		keyOf = statemachine.KVOpKey
	}
	return &Router{clients: clients, part: part, keyOf: keyOf}, nil
}

// Shards returns the number of groups the router spans.
func (r *Router) Shards() int { return len(r.clients) }

// OwnerOf returns the group an operation routes to, or ErrUnroutable
// when no key is extractable from it (a malformed op, or a range scan —
// which addresses every group; use Scan).
func (r *Router) OwnerOf(op []byte) (ids.GroupID, error) {
	key, ok := r.keyOf(op)
	if !ok {
		return 0, fmt.Errorf("%w (op of %d bytes)", ErrUnroutable, len(op))
	}
	return r.part.Owner(key), nil
}

// Invoke routes one operation to its owner group and blocks for that
// group's reply quorum, exactly as Client.Invoke does against an
// unsharded cluster.
func (r *Router) Invoke(op []byte) ([]byte, error) {
	g, err := r.OwnerOf(op)
	if err != nil {
		return nil, err
	}
	return r.clients[g].Invoke(op)
}

// InvokeCancel is Invoke with an early-exit signal, completing the
// Invoker surface (the 2PC coordinator cancels sibling legs through
// it).
func (r *Router) InvokeCancel(op []byte, cancel <-chan struct{}) ([]byte, error) {
	g, err := r.OwnerOf(op)
	if err != nil {
		return nil, err
	}
	return r.clients[g].InvokeCancel(op, cancel)
}

// Read routes a single-key read to its owner group at the requested
// consistency level (see Client.Read). Range scans have no single
// owner; use Scan.
func (r *Router) Read(op []byte, opts ReadOptions) ([]byte, error) {
	g, err := r.OwnerOf(op)
	if err != nil {
		return nil, err
	}
	return r.clients[g].Read(op, opts)
}

// scanGroups returns the groups a scan of [lo, hi) must visit.
func (r *Router) scanGroups(lo, hi string) []ids.GroupID {
	if rp, ok := r.part.(RangePartitioner); ok {
		return rp.RangeGroups(lo, hi)
	}
	out := make([]ids.GroupID, r.part.Shards())
	for g := range out {
		out[g] = ids.GroupID(g)
	}
	return out
}

// Scan merge-streams the key range [lo, hi) across every involved
// group in ascending key order, up to limit pairs. Each group is read
// in pages through its own continuation token, so an arbitrarily large
// range never materializes anywhere at once; more reports that keys
// remain past the last returned one (resume from its successor). The
// consistency level applies per shard: a Stale merge is a union of
// per-shard bounded-staleness snapshots, not one cross-shard cut.
func (r *Router) Scan(lo, hi string, limit int, opts ReadOptions) (pairs []statemachine.ScanPair, more bool, err error) {
	if limit <= 0 || limit > statemachine.MaxScanLimit {
		limit = statemachine.MaxScanLimit
	}
	type shardStream struct {
		g    ids.GroupID
		buf  []statemachine.ScanPair
		next string // resume key of the shard's following page
		done bool   // shard exhausted (last page had no continuation)
	}
	// Per-shard page size: every group could in principle own the next
	// `limit` smallest keys, but paging keeps refills cheap.
	page := limit
	if page > 256 {
		page = 256
	}
	fill := func(s *shardStream) error {
		res, err := r.clients[s.g].Read(statemachine.EncodeScan(s.next, hi, page), opts)
		if err != nil {
			return fmt.Errorf("client: scan on group %v: %w", s.g, err)
		}
		buf, pageMore, err := statemachine.DecodeScanResult(res)
		if err != nil {
			return fmt.Errorf("client: scan on group %v: %w", s.g, err)
		}
		s.buf = buf
		if pageMore {
			if len(buf) == 0 {
				return fmt.Errorf("client: scan on group %v stalled with a continuation but no results", s.g)
			}
			s.next = buf[len(buf)-1].Key + "\x00"
		} else {
			s.done = true
		}
		return nil
	}
	streams := make([]*shardStream, 0, r.part.Shards())
	for _, g := range r.scanGroups(lo, hi) {
		s := &shardStream{g: g, next: lo}
		if err := fill(s); err != nil {
			return nil, false, err
		}
		streams = append(streams, s)
	}
	for len(pairs) < limit {
		// Pick the stream holding the smallest next key.
		var min *shardStream
		for _, s := range streams {
			if len(s.buf) == 0 {
				continue
			}
			if min == nil || s.buf[0].Key < min.buf[0].Key {
				min = s
			}
		}
		if min == nil {
			return pairs, false, nil // every shard exhausted
		}
		pairs = append(pairs, min.buf[0])
		min.buf = min.buf[1:]
		if len(min.buf) == 0 && !min.done {
			if err := fill(min); err != nil {
				return nil, false, err
			}
		}
	}
	for _, s := range streams {
		if len(s.buf) > 0 || !s.done {
			return pairs, true, nil
		}
	}
	return pairs, false, nil
}

// MultiGet reads several keys in one call, fanning the GETs out across
// their owner groups in parallel (one goroutine per involved group;
// keys within a group are read sequentially through that group's
// client). Results are returned in key order; a missing key yields a
// nil value. The first group error aborts the whole read: the sibling
// goroutines are canceled, so the call returns as soon as the error is
// observed instead of waiting out every other group's retry budget.
func (r *Router) MultiGet(keys []string) ([][]byte, error) {
	type slot struct {
		idx int
		key string
	}
	byGroup := make(map[ids.GroupID][]slot)
	for i, k := range keys {
		g := r.part.Owner(k)
		byGroup[g] = append(byGroup[g], slot{idx: i, key: k})
	}

	groups := make([]ids.GroupID, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	out := make([][]byte, len(keys)) // each slot written by exactly one goroutine
	err := txn.FanOut(groups, true, func(g ids.GroupID, cancel <-chan struct{}) error {
		for _, s := range byGroup[g] {
			select {
			case <-cancel: // a sibling group already failed
				return txn.ErrLegCanceled
			default:
			}
			res, err := r.clients[g].InvokeCancel(statemachine.EncodeGet(s.key), cancel)
			if err != nil {
				// Cancellation is the consequence of the first error,
				// not an error of its own.
				if errors.Is(err, ErrCanceled) {
					return txn.ErrLegCanceled
				}
				return fmt.Errorf("client: multi-get %q from %v: %w", s.key, g, err)
			}
			status, value := statemachine.DecodeResult(res)
			if status == statemachine.KVOK {
				out[s.idx] = append([]byte(nil), value...)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// coordinator lazily assembles the 2PC coordinator over the per-group
// clients. Transaction ids are minted from the group-0 client's
// timestamp counter (AllocateTimestamp), so they live in the same
// monotonic domain as request timestamps: seeding a restarted client's
// InitialTimestamp above its previous run makes both its requests and
// its transaction ids collision-free, with no separate rule to follow.
func (r *Router) coordinator() (*txn.Coordinator, error) {
	if r.coord != nil {
		return r.coord, nil
	}
	groups := make([]txn.Invoker, len(r.clients))
	for g, cl := range r.clients {
		groups[g] = cl
	}
	co, err := txn.New(r.clients[0].ID(), groups, r.part, r.clients[0].AllocateTimestamp)
	if err != nil {
		return nil, err
	}
	r.coord = co
	return co, nil
}

// Txn atomically applies a set of KV writes (EncodePut / EncodeDelete /
// EncodeAdd) that may span any number of shards, running two-phase
// commit over the owner groups (internal/txn). Either every shard
// applies all of its writes or no shard applies any. Lock conflicts
// with an abandoned transaction are resolved (presumed abort) and the
// transaction retried under a fresh id; txn.ErrAborted reports a
// transaction that left no effects anywhere.
func (r *Router) Txn(writes [][]byte) error {
	co, err := r.coordinator()
	if err != nil {
		return err
	}
	return co.Exec(writes)
}

// MultiPut atomically writes several key/value pairs across their owner
// shards — the cross-shard companion of MultiGet.
func (r *Router) MultiPut(keys []string, values [][]byte) error {
	writes, err := txn.MultiPut(keys, values)
	if err != nil {
		return err
	}
	return r.Txn(writes)
}

// ResolveTx settles a possibly-abandoned transaction observed on group
// g (the id arrives in a KVLocked result payload, see
// statemachine.DecodeLockHolder): presumed abort unless the coordinator
// shard recorded a commit, then the finish legs run so every lock is
// released. It reports the settled outcome.
func (r *Router) ResolveTx(g ids.GroupID, id statemachine.TxID) (committed bool, err error) {
	co, err := r.coordinator()
	if err != nil {
		return false, err
	}
	return co.Resolve(g, id)
}

// Close closes every per-group client.
func (r *Router) Close() {
	for _, cl := range r.clients {
		cl.Close()
	}
}
