package client

import (
	"fmt"
	"sync"

	"repro/internal/ids"
	"repro/internal/statemachine"
)

// Partitioner is the key→group mapping the router consults; the
// concrete hash-range implementation lives in internal/shard (the
// router only needs the contract, which keeps this package free of a
// dependency on the sharding layer).
type Partitioner interface {
	Shards() int
	Owner(key string) ids.GroupID
}

// Router is the shard-aware client of a sharded deployment: one
// underlying Client (with its own Policy tracking that group's mode,
// view and primary) per consensus group. Single-key operations route to
// their owner group; multi-key reads fan out across groups in parallel.
// Like Client, a Router is not safe for concurrent use — run one per
// goroutine.
type Router struct {
	clients []*Client // indexed by GroupID
	part    Partitioner
	keyOf   func(op []byte) (string, bool)
}

// NewRouter assembles a router from per-group clients (index g serves
// group g; every group must be covered). keyOf extracts the routing key
// from an operation; nil uses the KV codec (statemachine.KVOpKey).
// Operations without an extractable key go to group 0, so any opaque
// workload still has the deterministic single-group semantics.
func NewRouter(clients []*Client, part Partitioner, keyOf func(op []byte) (string, bool)) (*Router, error) {
	if part == nil {
		return nil, fmt.Errorf("client: router needs a partitioner")
	}
	if len(clients) != part.Shards() {
		return nil, fmt.Errorf("client: router has %d clients for %d shards", len(clients), part.Shards())
	}
	for g, cl := range clients {
		if cl == nil {
			return nil, fmt.Errorf("client: router missing the client for group %d", g)
		}
	}
	if keyOf == nil {
		keyOf = statemachine.KVOpKey
	}
	return &Router{clients: clients, part: part, keyOf: keyOf}, nil
}

// Shards returns the number of groups the router spans.
func (r *Router) Shards() int { return len(r.clients) }

// OwnerOf returns the group an operation routes to.
func (r *Router) OwnerOf(op []byte) ids.GroupID {
	key, ok := r.keyOf(op)
	if !ok {
		return 0
	}
	return r.part.Owner(key)
}

// Invoke routes one operation to its owner group and blocks for that
// group's reply quorum, exactly as Client.Invoke does against an
// unsharded cluster.
func (r *Router) Invoke(op []byte) ([]byte, error) {
	return r.clients[r.OwnerOf(op)].Invoke(op)
}

// MultiGet reads several keys in one call, fanning the GETs out across
// their owner groups in parallel (one goroutine per involved group;
// keys within a group are read sequentially through that group's
// client). Results are returned in key order; a missing key yields a
// nil value. The first group error aborts the whole read.
func (r *Router) MultiGet(keys []string) ([][]byte, error) {
	type slot struct {
		idx int
		key string
	}
	byGroup := make(map[ids.GroupID][]slot)
	for i, k := range keys {
		g := r.part.Owner(k)
		byGroup[g] = append(byGroup[g], slot{idx: i, key: k})
	}

	out := make([][]byte, len(keys))
	errs := make([]error, 0, len(byGroup))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g, slots := range byGroup {
		wg.Add(1)
		go func(g ids.GroupID, slots []slot) {
			defer wg.Done()
			for _, s := range slots {
				res, err := r.clients[g].Invoke(statemachine.EncodeGet(s.key))
				if err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("client: multi-get %q from %v: %w", s.key, g, err))
					mu.Unlock()
					return
				}
				status, value := statemachine.DecodeResult(res)
				if status == statemachine.KVOK {
					mu.Lock()
					out[s.idx] = append([]byte(nil), value...)
					mu.Unlock()
				}
			}
		}(g, slots)
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errs[0]
	}
	return out, nil
}

// Close closes every per-group client.
func (r *Router) Close() {
	for _, cl := range r.clients {
		cl.Close()
	}
}
