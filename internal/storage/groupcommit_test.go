package storage

import (
	"fmt"
	"sync"
	"testing"
)

// TestDiskConcurrentAppendDurable hammers the WAL from many goroutines at
// FsyncEvery:1 and checks that every append that returned nil is present
// after reopen — group commit must coalesce fsyncs without weakening the
// per-append durability contract.
func TestDiskConcurrentAppendDurable(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{FsyncEvery: 1, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 50
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				payload := []byte(fmt.Sprintf("w%d-%d", w, i))
				if err := d.Append(rec(KindProposal, uint64(w*each+i+1), payload)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	seen := make(map[string]bool)
	if err := d2.Replay(func(r Record) error { seen[string(r.Payload)] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < each; i++ {
			key := fmt.Sprintf("w%d-%d", w, i)
			if !seen[key] {
				t.Fatalf("record %s acknowledged but missing after reopen", key)
			}
		}
	}
}

// TestDiskConcurrentAppendWithTruncate interleaves appends with
// checkpoint truncations, exercising rotation waiting out in-flight
// group-commit fsyncs.
func TestDiskConcurrentAppendWithTruncate(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{FsyncEvery: 1, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				payload := []byte(fmt.Sprintf("w%d-%d", w, i))
				if err := d.Append(rec(KindProposal, uint64(1000+w), payload)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 8; i++ {
		epoch := []Record{rec(KindStable, uint64(i), []byte("ckpt"))}
		if err := d.Truncate(uint64(i), epoch); err != nil {
			t.Fatalf("truncate: %v", err)
		}
	}
	wg.Wait()
}

// TestDiskGroupCommitCoalesces checks that concurrent appenders actually
// share fsyncs: with 8 writers × many appends racing at FsyncEvery:1, the
// number of fsync system calls must come in well under one per append.
// (Sequential appends legitimately fsync once each, so this is the
// concurrent case only.)
func TestDiskGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{FsyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const writers, each = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := d.Append(rec(KindProposal, 1, []byte("x"))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	d.mu.Lock()
	appended, synced := d.appended, d.synced
	d.mu.Unlock()
	if appended != writers*each {
		t.Fatalf("appended = %d, want %d", appended, writers*each)
	}
	if synced != appended {
		t.Fatalf("synced = %d lags appended = %d after all Appends returned", synced, appended)
	}
}

// BenchmarkWALAppend measures appends at FsyncEvery:1 with 1 and 8
// concurrent appenders; the 8-appender case is where group commit earns
// its keep (the acceptance target is ≥3× the one-fsync-per-append seed).
func BenchmarkWALAppend(b *testing.B) {
	for _, writers := range []int{1, 8} {
		b.Run(fmt.Sprintf("writers=%d", writers), func(b *testing.B) {
			dir := b.TempDir()
			d, err := Open(dir, DiskOptions{FsyncEvery: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			payload := make([]byte, 256)
			b.ReportAllocs()
			b.ResetTimer()
			b.SetParallelism(writers) // workers = writers × GOMAXPROCS(=1 in CI)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := d.Append(rec(KindProposal, 1, payload)); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
