// Package storage is the durable storage subsystem behind crash-restart
// recovery: a segmented, CRC-framed write-ahead log plus a snapshot
// store keyed by checkpoint sequence number and state digest.
//
// The paper's State Transfer subsections assume every replica keeps a
// message log and checkpoint snapshots; the rest of this repository
// models that in memory (internal/mlog, replica.Executor). This package
// makes the model survive a process crash, which is the precondition
// for the paper's private-cloud failure model — nodes that "may fail by
// stopping, and may restart" — to actually hold for real processes.
//
// # Write-ahead log
//
// The WAL is a sequence of Records: accepted proposals, the replica's
// own votes, commit markers, stable-checkpoint markers, and view/mode
// entries. Engines append a record BEFORE acting on the event it
// describes (before multicasting a proposal, before voting, before
// executing a committed slot), so a replica that crashes and replays
// its log can never have externalized state it no longer remembers.
//
// On disk the log is a directory of segments (wal-<n>.seg). Each record
// is framed as
//
//	u32 length | u32 CRC-32C(body) | body
//
// so torn tail writes are detected and discarded on replay; corruption
// anywhere before the tail is an error. Segments rotate at a size
// bound, and Truncate drops whole segments whose records all fall at or
// below the stable checkpoint — WAL garbage collection rides the same
// checkpoint stabilization that garbage-collects the in-memory message
// log, keeping disk usage bounded.
//
// The fsync policy is configurable (config.Durability.FsyncEvery): 1
// syncs every append (no acknowledged write can be lost), N batches the
// sync cost over N appends (bounded loss of the most recent appends on
// a power failure; a plain process crash loses nothing either way
// because the OS still holds the written pages).
//
// # Snapshot store
//
// SaveSnapshot persists the composite checkpoint snapshot (service
// state + client table, see replica.Executor) together with its
// sequence number, state digest and stability proof ξ. Writes are
// atomic (write-temp-then-rename) and CRC-protected; only the newest
// intact snapshot is kept. Recovery restores the latest snapshot and
// replays the WAL suffix above it.
//
// Two implementations exist: Disk (real deployments, cmd/seemore
// -data-dir) and Mem (tests and the simulated cluster, where a shared
// Mem store models a disk that survives the process). Engines accept
// the Store interface, so the legacy fully-in-memory path is simply a
// nil store.
package storage
