package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/crypto"
)

func rec(kind Kind, seq uint64, payload []byte) Record {
	return Record{
		Kind:    kind,
		Seq:     seq,
		View:    3,
		Mode:    1,
		Digest:  crypto.Sum(payload),
		Payload: payload,
	}
}

func collect(t *testing.T, s Store) []Record {
	t.Helper()
	var out []Record
	if err := s.Replay(func(r Record) error { out = append(out, r); return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestDiskAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{
		rec(KindView, 0, nil),
		rec(KindProposal, 1, []byte("proposal-one")),
		rec(KindVote, 1, []byte("vote-one")),
		rec(KindCommit, 1, nil),
		rec(KindStable, 1, []byte("proof")),
	}
	for _, r := range want {
		if err := d.Append(r); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen, as a restarted process would.
	d2, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got := collect(t, d2)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Kind != want[i].Kind || got[i].Seq != want[i].Seq ||
			got[i].View != want[i].View || got[i].Mode != want[i].Mode ||
			got[i].Digest != want[i].Digest || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestDiskTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := d.Append(rec(KindProposal, i, []byte("p"))); err != nil {
			t.Fatal(err)
		}
	}
	name := d.curName
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop the last record in half.
	path := filepath.Join(dir, name)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatalf("open after torn tail: %v", err)
	}
	got := collect(t, d2)
	if len(got) != 2 {
		t.Fatalf("replayed %d records after torn tail, want 2", len(got))
	}
	// The log must remain appendable after the repair.
	if err := d2.Append(rec(KindCommit, 4, nil)); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	if got := collect(t, d3); len(got) != 3 || got[2].Seq != 4 {
		t.Fatalf("post-repair log = %d records (last %+v), want 3 ending at seq 4", len(got), got[len(got)-1])
	}
}

func TestDiskMidFileCorruptionFailsOpen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 3; i++ {
		if err := d.Append(rec(KindProposal, i, []byte("payload"))); err != nil {
			t.Fatal(err)
		}
	}
	name := d.curName
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[12] ^= 0xff // flip a byte inside the first record's body
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	// The damage is followed by intact frames, so it is not a torn
	// tail and must be reported, not silently swallowed.
	if _, err := Open(dir, DiskOptions{}); err == nil {
		t.Fatal("open succeeded over mid-file corruption")
	}
}

func TestDiskSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation every couple of records.
	d, err := Open(dir, DiskOptions{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	payload := bytes.Repeat([]byte("x"), 64)
	for i := uint64(1); i <= 20; i++ {
		if err := d.Append(rec(KindProposal, i, payload)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := d.segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}

	// Checkpoint at 15: everything at or below must go, the rest stays.
	epoch := []Record{rec(KindView, 0, nil), rec(KindStable, 15, []byte("proof"))}
	if err := d.Truncate(15, epoch); err != nil {
		t.Fatal(err)
	}
	got := collect(t, d)
	var haveView, haveStable, have20 bool
	lowSurvivors := 0
	for _, r := range got {
		switch r.Kind {
		case KindView:
			haveView = true
		case KindStable:
			haveStable = true
		default:
			if r.Seq == 20 {
				have20 = true
			}
			if r.Seq <= 15 {
				lowSurvivors++
			}
		}
	}
	if !haveView || !haveStable {
		t.Fatalf("epoch records missing from truncated log: %+v", got)
	}
	if !have20 {
		t.Fatal("seq 20 lost by truncation")
	}
	// GC is segment-granular: a record at or below the checkpoint may
	// survive only if its segment also holds newer records, so at most
	// one segment's worth remains.
	if lowSurvivors > 2 {
		t.Fatalf("%d records at or below the checkpoint survived truncation", lowSurvivors)
	}
}

func TestDiskFsyncBatching(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{FsyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		if err := d.Append(rec(KindCommit, i, nil)); err != nil {
			t.Fatal(err)
		}
	}
	// Close syncs the remainder; reopen sees everything.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(dir, DiskOptions{FsyncEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if got := collect(t, d2); len(got) != 20 {
		t.Fatalf("replayed %d records, want 20", len(got))
	}
}

func TestDiskSnapshotSaveLoadPrune(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if s, err := d.LatestSnapshot(); err != nil || s != nil {
		t.Fatalf("fresh store snapshot = %v, %v; want nil, nil", s, err)
	}
	for _, seq := range []uint64{128, 256} {
		data := bytes.Repeat([]byte{byte(seq)}, 100)
		snap := Snapshot{Seq: seq, Digest: crypto.Sum(data), Proof: []byte("xi"), Data: data}
		if err := d.SaveSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	}
	got, err := d.LatestSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Seq != 256 || !bytes.Equal(got.Proof, []byte("xi")) ||
		got.Digest != crypto.Sum(got.Data) {
		t.Fatalf("latest snapshot = %+v", got)
	}
	// The older snapshot must have been pruned.
	if _, err := os.Stat(filepath.Join(dir, snapName(128))); !os.IsNotExist(err) {
		t.Fatalf("old snapshot not pruned: %v", err)
	}

	// A corrupted snapshot is skipped, not fatal.
	path := filepath.Join(dir, snapName(256))
	b, _ := os.ReadFile(path)
	b[10] ^= 0xff
	os.WriteFile(path, b, 0o644)
	if s, err := d.LatestSnapshot(); err != nil || s != nil {
		t.Fatalf("corrupt snapshot load = %v, %v; want nil, nil", s, err)
	}
}

func TestDiskDirectoryLock(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A second opener of the same directory must be refused: two WALs
	// interleaving appends would corrupt the log.
	if _, err := Open(dir, DiskOptions{}); err == nil {
		t.Fatal("second Open of a locked data directory succeeded")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Close releases the lock; the next process may take over.
	d2, err := Open(dir, DiskOptions{})
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	d2.Close()
}

func TestMemMirrorsDiskSemantics(t *testing.T) {
	m := NewMem()
	for i := uint64(1); i <= 5; i++ {
		if err := m.Append(rec(KindProposal, i, []byte("p"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.SaveSnapshot(Snapshot{Seq: 3, Data: []byte("state")}); err != nil {
		t.Fatal(err)
	}
	if err := m.Truncate(3, []Record{rec(KindStable, 3, nil)}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, m)
	if len(got) != 3 || got[0].Kind != KindStable || got[1].Seq != 4 || got[2].Seq != 5 {
		t.Fatalf("mem truncation kept %+v", got)
	}
	s, err := m.LatestSnapshot()
	if err != nil || s == nil || s.Seq != 3 || string(s.Data) != "state" {
		t.Fatalf("mem snapshot = %+v, %v", s, err)
	}
	m.Close()
	if err := m.Append(rec(KindCommit, 6, nil)); err == nil {
		t.Fatal("append after close succeeded")
	}
	m.Reopen()
	if err := m.Append(rec(KindCommit, 6, nil)); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
