package storage

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/crypto"
)

// Kind discriminates WAL record types.
type Kind uint8

const (
	// KindInvalid is the zero Kind; it never appears in a log.
	KindInvalid Kind = iota
	// KindView records entry into a view: View and Mode are set. Written
	// when a replica boots and whenever it applies a NEW-VIEW, so replay
	// ends knowing the current view.
	KindView
	// KindProposal records an accepted proposal (the primary's own, or
	// one received and logged). Payload is the encoded message.Signed
	// including its request payload.
	KindProposal
	// KindVote records a signed vote this replica sent (an accept,
	// prepare or commit vote). Payload is the encoded message.Signed. A
	// recovered replica must not contradict votes it already cast.
	KindVote
	// KindCommit records that the slot Seq committed with Digest.
	// Payload optionally carries an encoded commit certificate
	// (message.Signed) for modes that keep one.
	KindCommit
	// KindStable records that the checkpoint at Seq with state digest
	// Digest became stable. The snapshot itself lives in the snapshot
	// store; the marker orders stabilization against the surrounding
	// records.
	KindStable
	kindSentinel // keep last
)

var kindNames = [...]string{
	KindInvalid:  "INVALID",
	KindView:     "VIEW",
	KindProposal: "PROPOSAL",
	KindVote:     "VOTE",
	KindCommit:   "COMMIT",
	KindStable:   "STABLE",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) && k != KindInvalid {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k is a defined record kind.
func (k Kind) Valid() bool { return k > KindInvalid && k < kindSentinel }

// Record is one WAL entry. The protocol payloads (signed proposals,
// votes, checkpoint proofs) stay opaque bytes here so the storage layer
// depends on nothing above the crypto primitives.
type Record struct {
	Kind    Kind
	Seq     uint64
	View    uint64
	Mode    uint8
	Digest  crypto.Digest
	Payload []byte
}

// maxPayload bounds a decoded payload, mirroring the wire codec's
// hostile-input cap: a corrupt length prefix must not allocate
// gigabytes.
const maxPayload = 64 << 20

// encode appends the record's canonical encoding to buf.
func (r *Record) encode(buf []byte) []byte {
	buf = append(buf, byte(r.Kind))
	buf = binary.LittleEndian.AppendUint64(buf, r.Seq)
	buf = binary.LittleEndian.AppendUint64(buf, r.View)
	buf = append(buf, r.Mode)
	buf = append(buf, r.Digest[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Payload)))
	buf = append(buf, r.Payload...)
	return buf
}

// decodeRecord parses one record body (the CRC-verified frame payload).
func decodeRecord(b []byte) (Record, error) {
	var r Record
	const fixed = 1 + 8 + 8 + 1 + crypto.DigestSize + 4
	if len(b) < fixed {
		return r, errors.New("storage: short record")
	}
	r.Kind = Kind(b[0])
	if !r.Kind.Valid() {
		return r, fmt.Errorf("storage: invalid record kind %d", b[0])
	}
	r.Seq = binary.LittleEndian.Uint64(b[1:])
	r.View = binary.LittleEndian.Uint64(b[9:])
	r.Mode = b[17]
	copy(r.Digest[:], b[18:])
	n := binary.LittleEndian.Uint32(b[18+crypto.DigestSize:])
	if n > maxPayload || int(n) != len(b)-fixed {
		return r, fmt.Errorf("storage: record payload length %d does not match frame", n)
	}
	if n > 0 {
		r.Payload = append([]byte(nil), b[fixed:]...)
	}
	return r, nil
}

// Snapshot is a persisted stable checkpoint: the composite state bytes
// at sequence number Seq, the state digest the protocol agreed on, and
// the encoded stability proof ξ (opaque to storage; the engines encode
// it with the message codec).
type Snapshot struct {
	Seq    uint64
	Digest crypto.Digest
	Proof  []byte
	Data   []byte
}

// Store is the durability interface the consensus engines write
// through. Implementations must be safe for use from a single engine
// goroutine; Close may race with nothing.
type Store interface {
	// Append writes one record to the log. Durability follows the
	// implementation's fsync policy; Append returning nil means the
	// record will survive a process crash (though possibly not a power
	// failure, if syncs are batched).
	Append(rec Record) error
	// Sync forces all buffered appends to stable storage.
	Sync() error
	// Replay streams every surviving record in append order. It is
	// called once, before the engine starts.
	Replay(fn func(rec Record) error) error
	// SaveSnapshot atomically persists a stable checkpoint snapshot and
	// discards older ones.
	SaveSnapshot(snap Snapshot) error
	// LatestSnapshot returns the newest intact snapshot, or nil when
	// none exists.
	LatestSnapshot() (*Snapshot, error)
	// Truncate garbage-collects log history: epoch records (the current
	// view and stable checkpoint, supplied by the engine) become the
	// head of a fresh segment, and any segment whose records all have
	// Seq ≤ seq is deleted. Records above seq survive.
	Truncate(seq uint64, epoch []Record) error
	// Close syncs and releases the store.
	Close() error
}
