package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/crypto"
)

// castagnoli is the CRC-32C table (the polynomial used by modern
// storage systems; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// DiskOptions tunes the file-backed store.
type DiskOptions struct {
	// FsyncEvery batches fsyncs: the file is synced after every N
	// appends. 1 (and anything below) syncs every append — the safest
	// setting and the default. Larger values trade a bounded window of
	// recent appends (on power failure; not on process crash) for
	// throughput.
	FsyncEvery int
	// SegmentBytes rotates the active WAL segment once it exceeds this
	// size (default 4 MiB).
	SegmentBytes int64
}

func (o DiskOptions) normalized() DiskOptions {
	if o.FsyncEvery < 1 {
		o.FsyncEvery = 1
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// Disk is the file-backed Store: a directory holding WAL segments
// (wal-<n>.seg) and checkpoint snapshots (snap-<seq>.snap).
//
// Append and Sync are safe for concurrent use and group-commit: while one
// caller's fsync is in flight, other appenders keep writing; when the
// fsync returns, exactly one parked caller issues the next fsync covering
// everything written in the meantime. Concurrent appenders therefore
// share fsyncs instead of queueing one fsync per append, while every
// Append that returns nil is still individually durable (FsyncEvery:1).
type Disk struct {
	dir  string
	opts DiskOptions
	lock *os.File // flock on LOCK, held for the store's lifetime

	mu      sync.Mutex
	flushed sync.Cond // signals syncing edges and synced advancing

	cur     *os.File
	curName string
	curSize int64
	curMax  uint64 // highest GC-relevant Seq in the active segment
	nextSeg uint64
	segMax  map[string]uint64 // closed segments → highest Seq

	// Group-commit state. Positions are logical append counts, global and
	// monotonic across segment rotations: appended counts records written
	// to the log, synced the prefix made durable. Rotation syncs the
	// outgoing segment in full before switching files, so at every segment
	// boundary synced == appended and an fsync of the active file is
	// always enough to cover every position up to the current appended.
	appended uint64
	synced   uint64
	syncing  bool // an fsync is in flight (file must not be rotated away)
	syncErr  error
	unsynced int // appends since the last sync request (FsyncEvery > 1 countdown)
	closed   bool
}

const (
	segPrefix  = "wal-"
	segSuffix  = ".seg"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

// Open creates or reopens a disk store rooted at dir. Reopening scans
// every segment: a torn tail write (a crash mid-append) is truncated
// away; corruption anywhere else fails the open so a damaged log is
// never silently replayed.
func Open(dir string, opts DiskOptions) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	// One writer per data directory: two processes appending to the
	// same WAL interleave frames and corrupt it, so turn that mistake
	// into a clean startup error instead.
	lock, err := acquireDirLock(dir)
	if err != nil {
		return nil, err
	}
	d := &Disk{
		dir:    dir,
		opts:   opts.normalized(),
		lock:   lock,
		segMax: make(map[string]uint64),
	}
	d.flushed.L = &d.mu
	ok := false
	defer func() {
		if !ok {
			releaseDirLock(lock)
		}
	}()
	segs, err := d.segments()
	if err != nil {
		return nil, err
	}
	for i, name := range segs {
		last := i == len(segs)-1
		maxSeq, goodLen, err := scanSegment(filepath.Join(dir, name), last)
		if err != nil {
			return nil, err
		}
		if goodLen >= 0 { // torn tail on the final segment: drop it
			if err := os.Truncate(filepath.Join(dir, name), goodLen); err != nil {
				return nil, fmt.Errorf("storage: truncate torn tail of %s: %w", name, err)
			}
		}
		d.segMax[name] = maxSeq
		idx, _ := segIndex(name)
		if idx >= d.nextSeg {
			d.nextSeg = idx + 1
		}
	}
	// Append to the newest segment if one exists; otherwise start fresh.
	if len(segs) > 0 {
		name := segs[len(segs)-1]
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("storage: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: %w", err)
		}
		d.cur, d.curName, d.curSize = f, name, st.Size()
		d.curMax = d.segMax[name]
		delete(d.segMax, name)
		ok = true
		return d, nil
	}
	if err := d.rotate(); err != nil {
		return nil, err
	}
	ok = true
	return d, nil
}

// Dir returns the store's root directory.
func (d *Disk) Dir() string { return d.dir }

// segments lists WAL segment file names sorted by index.
func (d *Disk) segments() ([]string, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var out []string
	for _, e := range entries {
		if _, ok := segIndex(e.Name()); ok {
			out = append(out, e.Name())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := segIndex(out[i])
		b, _ := segIndex(out[j])
		return a < b
	})
	return out, nil
}

func segIndex(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	var idx uint64
	if _, err := fmt.Sscanf(mid, "%016d", &idx); err != nil {
		return 0, false
	}
	return idx, true
}

func segName(idx uint64) string { return fmt.Sprintf("%s%016d%s", segPrefix, idx, segSuffix) }

// gcSeq is the sequence number a record counts for during segment GC:
// view and stable markers are always re-established by the truncation
// epoch, so they never pin a segment.
func gcSeq(rec Record) uint64 {
	switch rec.Kind {
	case KindView, KindStable:
		return 0
	default:
		return rec.Seq
	}
}

// scanSegment validates every frame of one segment. It returns the
// highest GC-relevant Seq seen and, when tornOK and the segment ends in
// a torn frame, the length of the intact prefix (otherwise -1). A bad
// frame that is not a clean tail is an error.
func scanSegment(path string, tornOK bool) (maxSeq uint64, goodLen int64, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, -1, fmt.Errorf("storage: %w", err)
	}
	off := int64(0)
	for int(off) < len(b) {
		rec, n, ferr := readFrame(b[off:])
		if ferr != nil {
			// A torn tail — the crash interrupted the final append — is
			// a frame that runs into end-of-file. A bad frame with more
			// intact data behind it is real corruption.
			if tornOK && frameReachesEOF(b[off:]) {
				return maxSeq, off, nil
			}
			return 0, -1, fmt.Errorf("storage: %s corrupt at offset %d: %w", filepath.Base(path), off, ferr)
		}
		if s := gcSeq(rec); s > maxSeq {
			maxSeq = s
		}
		off += int64(n)
	}
	return maxSeq, -1, nil
}

// frameReachesEOF reports whether the frame starting at the front of b
// extends to or past the end of b (the signature of an interrupted
// append, as opposed to mid-file damage).
func frameReachesEOF(b []byte) bool {
	if len(b) < 8 {
		return true
	}
	n := binary.LittleEndian.Uint32(b)
	return 8+int64(n) >= int64(len(b))
}

// readFrame decodes one length|crc|body frame from the front of b,
// returning the record and the total frame size.
func readFrame(b []byte) (Record, int, error) {
	if len(b) < 8 {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxPayload+64 {
		return Record{}, 0, errors.New("frame length exceeds limit")
	}
	if len(b) < 8+int(n) {
		return Record{}, 0, io.ErrUnexpectedEOF
	}
	want := binary.LittleEndian.Uint32(b[4:])
	body := b[8 : 8+n]
	if crc32.Checksum(body, castagnoli) != want {
		return Record{}, 0, errors.New("CRC mismatch")
	}
	rec, err := decodeRecord(body)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, 8 + int(n), nil
}

func appendFrame(buf []byte, rec *Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	buf = rec.encode(buf)
	body := buf[start+8:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(body)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(body, castagnoli))
	return buf
}

// rotate closes the active segment and opens a fresh one. It requires
// d.mu held; it waits out any in-flight fsync (the syncer holds the file)
// and leaves the outgoing segment fully durable, so the group-commit
// counters reset clean for the new file.
func (d *Disk) rotate() error {
	if d.cur != nil {
		for d.syncing {
			d.flushed.Wait()
		}
		if err := d.cur.Sync(); err != nil {
			return d.latchSyncErr(err)
		}
		d.synced = d.appended
		d.flushed.Broadcast()
		if err := d.cur.Close(); err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		d.segMax[d.curName] = d.curMax
		d.unsynced = 0
	}
	name := segName(d.nextSeg)
	d.nextSeg++
	f, err := os.OpenFile(filepath.Join(d.dir, name), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	d.cur, d.curName, d.curSize, d.curMax = f, name, 0, 0
	syncDir(d.dir)
	return nil
}

// latchSyncErr records a failed fsync. After one, the page cache may have
// dropped dirty pages the kernel could not write, so no later fsync can
// retroactively make earlier appends durable — every subsequent append
// and sync reports the failure rather than pretending to recover.
func (d *Disk) latchSyncErr(err error) error {
	if d.syncErr == nil {
		d.syncErr = fmt.Errorf("storage: %w", err)
	}
	d.flushed.Broadcast()
	return d.syncErr
}

// Append implements Store. It is safe for concurrent use: callers that
// need durability coalesce onto a shared fsync (see the Disk doc comment)
// instead of syncing once each.
func (d *Disk) Append(rec Record) error {
	if !rec.Kind.Valid() {
		return fmt.Errorf("storage: append of invalid record kind %d", uint8(rec.Kind))
	}
	frame := appendFrame(nil, &rec)
	d.mu.Lock()
	defer d.mu.Unlock()
	pos, err := d.appendLocked(rec, frame)
	if err != nil {
		return err
	}
	d.unsynced++
	if d.unsynced < d.opts.FsyncEvery {
		// Inside the FsyncEvery window: this append's durability is
		// deliberately deferred, matching the documented trade.
		return nil
	}
	d.unsynced = 0
	return d.syncToLocked(pos)
}

// appendLocked writes one pre-encoded record frame to the active segment
// and returns its logical position. The frame is built by the caller
// outside the lock so encoding and checksumming stay off the serial
// section. Caller holds d.mu.
func (d *Disk) appendLocked(rec Record, frame []byte) (uint64, error) {
	if d.closed {
		return 0, errors.New("storage: store closed")
	}
	if d.syncErr != nil {
		return 0, d.syncErr
	}
	if d.curSize > d.opts.SegmentBytes {
		if err := d.rotate(); err != nil {
			return 0, err
		}
	}
	if _, err := d.cur.Write(frame); err != nil {
		return 0, fmt.Errorf("storage: %w", err)
	}
	d.curSize += int64(len(frame))
	if s := gcSeq(rec); s > d.curMax {
		d.curMax = s
	}
	d.appended++
	return d.appended, nil
}

// syncToLocked blocks until every append at or below pos is durable.
// Caller holds d.mu; the lock is released while an fsync runs, so other
// appenders keep writing into the batch the next fsync will cover.
func (d *Disk) syncToLocked(pos uint64) error {
	for {
		if d.syncErr != nil {
			return d.syncErr
		}
		if d.synced >= pos {
			return nil
		}
		if d.syncing {
			// Another caller's fsync is in flight; park. Whatever it
			// covers, the loop re-checks on wake-up and the first parked
			// caller still uncovered becomes the next syncer.
			d.flushed.Wait()
			continue
		}
		d.syncing = true
		d.mu.Unlock()
		// Commit window: step off the CPU once so appenders just released
		// by the previous fsync (runnable, but not yet scheduled) can
		// write their records into the batch this fsync is about to
		// cover. Costs ~100ns when nobody else is runnable; multiplies
		// the coalescing factor when the log is contended.
		runtime.Gosched()
		d.mu.Lock()
		f, target := d.cur, d.appended
		d.mu.Unlock()
		err := f.Sync()
		d.mu.Lock()
		d.syncing = false
		if err != nil {
			return d.latchSyncErr(err)
		}
		if target > d.synced {
			d.synced = target
		}
		d.flushed.Broadcast()
	}
}

// Sync implements Store: it makes every append issued so far durable.
// Safe for concurrent use with Append.
func (d *Disk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.unsynced = 0
	return d.syncToLocked(d.appended)
}

// Replay implements Store.
func (d *Disk) Replay(fn func(rec Record) error) error {
	segs, err := d.segments()
	if err != nil {
		return err
	}
	for _, name := range segs {
		b, err := os.ReadFile(filepath.Join(d.dir, name))
		if err != nil {
			return fmt.Errorf("storage: %w", err)
		}
		off := 0
		for off < len(b) {
			rec, n, ferr := readFrame(b[off:])
			if ferr != nil {
				// Open already truncated torn tails; hitting one here
				// means the file changed underneath us.
				return fmt.Errorf("storage: %s corrupt at offset %d: %w", name, off, ferr)
			}
			if err := fn(rec); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}

// Truncate implements Store: epoch records start a fresh segment, then
// every closed segment whose records all sit at or below seq is
// deleted.
func (d *Disk) Truncate(seq uint64, epoch []Record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("storage: store closed")
	}
	if err := d.rotate(); err != nil {
		return err
	}
	var last uint64
	for _, rec := range epoch {
		pos, err := d.appendLocked(rec, appendFrame(nil, &rec))
		if err != nil {
			return err
		}
		last = pos
	}
	d.unsynced = 0
	if err := d.syncToLocked(last); err != nil {
		return err
	}
	for name, maxSeq := range d.segMax {
		if maxSeq <= seq {
			if err := os.Remove(filepath.Join(d.dir, name)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("storage: %w", err)
			}
			delete(d.segMax, name)
		}
	}
	syncDir(d.dir)
	return nil
}

// Close implements Store. It waits out any in-flight fsync and flushes
// the tail, so parked appenders are released durable before the file
// goes away.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	for d.syncing {
		d.flushed.Wait()
	}
	var err error
	if d.syncErr != nil {
		err = d.syncErr
	} else if d.synced < d.appended {
		if serr := d.cur.Sync(); serr != nil {
			err = d.latchSyncErr(serr)
		} else {
			d.synced = d.appended
			d.flushed.Broadcast()
		}
	}
	if cerr := d.cur.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("storage: %w", cerr)
	}
	releaseDirLock(d.lock)
	d.closed = true
	return err
}

// ---------------------------------------------------------------------------
// Snapshot store

func snapName(seq uint64) string { return fmt.Sprintf("%s%020d%s", snapPrefix, seq, snapSuffix) }

func snapSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	var seq uint64
	if _, err := fmt.Sscanf(mid, "%020d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

func encodeSnapshot(s *Snapshot) []byte {
	body := make([]byte, 0, 8+crypto.DigestSize+8+len(s.Proof)+len(s.Data))
	body = binary.LittleEndian.AppendUint64(body, s.Seq)
	body = append(body, s.Digest[:]...)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(s.Proof)))
	body = append(body, s.Proof...)
	body = binary.LittleEndian.AppendUint32(body, uint32(len(s.Data)))
	body = append(body, s.Data...)
	out := make([]byte, 0, 4+len(body))
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(body, castagnoli))
	return append(out, body...)
}

func decodeSnapshot(b []byte) (*Snapshot, error) {
	if len(b) < 4+8+crypto.DigestSize+8 {
		return nil, errors.New("storage: short snapshot")
	}
	want := binary.LittleEndian.Uint32(b)
	body := b[4:]
	if crc32.Checksum(body, castagnoli) != want {
		return nil, errors.New("storage: snapshot CRC mismatch")
	}
	s := &Snapshot{Seq: binary.LittleEndian.Uint64(body)}
	copy(s.Digest[:], body[8:])
	off := 8 + crypto.DigestSize
	pn := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if pn > maxPayload || off+pn+4 > len(body) {
		return nil, errors.New("storage: malformed snapshot proof")
	}
	s.Proof = append([]byte(nil), body[off:off+pn]...)
	off += pn
	dn := int(binary.LittleEndian.Uint32(body[off:]))
	off += 4
	if dn > maxPayload || off+dn != len(body) {
		return nil, errors.New("storage: malformed snapshot data")
	}
	s.Data = append([]byte(nil), body[off:]...)
	return s, nil
}

// SaveSnapshot implements Store: write-temp, fsync, rename, then prune
// older snapshots. A crash at any point leaves either the old or the
// new snapshot intact, never a torn one.
func (d *Disk) SaveSnapshot(snap Snapshot) error {
	if d.closed {
		return errors.New("storage: store closed")
	}
	tmp := filepath.Join(d.dir, snapName(snap.Seq)+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	_, werr := f.Write(encodeSnapshot(&snap))
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: %w", werr)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, snapName(snap.Seq))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: %w", err)
	}
	syncDir(d.dir)
	// Prune every other snapshot (and stray temp files).
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return fmt.Errorf("storage: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") && strings.HasPrefix(name, snapPrefix) {
			os.Remove(filepath.Join(d.dir, name))
			continue
		}
		if seq, ok := snapSeq(name); ok && seq != snap.Seq {
			os.Remove(filepath.Join(d.dir, name))
		}
	}
	return nil
}

// LatestSnapshot implements Store: the newest snapshot that decodes
// intact. A corrupt newer file falls back to an older intact one
// rather than failing recovery outright.
func (d *Disk) LatestSnapshot() (*Snapshot, error) {
	entries, err := os.ReadDir(d.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := snapSeq(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs {
		b, err := os.ReadFile(filepath.Join(d.dir, snapName(seq)))
		if err != nil {
			continue
		}
		if s, err := decodeSnapshot(b); err == nil {
			return s, nil
		}
	}
	return nil, nil
}

// syncDir fsyncs a directory so renames and creates within it are
// durable. Best effort: not every filesystem supports it.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}
