package storage

import (
	"errors"
	"sync"
)

// Mem is the in-memory Store. It gives tests and the simulated cluster
// the exact durability semantics of Disk — records survive the engine
// that wrote them and can be replayed into a rebuilt replica — while
// modeling "the disk" as a Go object shared across the simulated
// process restart. Engines keep their legacy fully-volatile behavior by
// passing a nil Store instead.
type Mem struct {
	mu     sync.Mutex
	recs   []Record
	snap   *Snapshot
	closed bool
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{} }

// Reopen clears the closed flag so the same "disk" can back a restarted
// replica, mirroring Open on a Disk directory.
func (m *Mem) Reopen() *Mem {
	m.mu.Lock()
	m.closed = false
	m.mu.Unlock()
	return m
}

// Append implements Store.
func (m *Mem) Append(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("storage: store closed")
	}
	rec.Payload = append([]byte(nil), rec.Payload...)
	m.recs = append(m.recs, rec)
	return nil
}

// Sync implements Store.
func (m *Mem) Sync() error { return nil }

// Replay implements Store.
func (m *Mem) Replay(fn func(rec Record) error) error {
	m.mu.Lock()
	recs := append([]Record(nil), m.recs...)
	m.mu.Unlock()
	for _, rec := range recs {
		if err := fn(rec); err != nil {
			return err
		}
	}
	return nil
}

// SaveSnapshot implements Store.
func (m *Mem) SaveSnapshot(snap Snapshot) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("storage: store closed")
	}
	cp := snap
	cp.Proof = append([]byte(nil), snap.Proof...)
	cp.Data = append([]byte(nil), snap.Data...)
	m.snap = &cp
	return nil
}

// LatestSnapshot implements Store.
func (m *Mem) LatestSnapshot() (*Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snap == nil {
		return nil, nil
	}
	cp := *m.snap
	return &cp, nil
}

// Truncate implements Store: keep records above seq, with the epoch
// records as the new head.
func (m *Mem) Truncate(seq uint64, epoch []Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errors.New("storage: store closed")
	}
	kept := make([]Record, 0, len(epoch)+8)
	for _, rec := range epoch {
		rec.Payload = append([]byte(nil), rec.Payload...)
		kept = append(kept, rec)
	}
	for _, rec := range m.recs {
		if gcSeq(rec) > seq {
			kept = append(kept, rec)
		}
	}
	m.recs = kept
	return nil
}

// Len reports the number of live records (GC assertions in tests).
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.recs)
}

// Close implements Store.
func (m *Mem) Close() error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	return nil
}
