package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// acquireDirLock takes an exclusive, non-blocking flock on <dir>/LOCK.
// Exactly one process may own a data directory: two WALs appending to
// the same segment interleave frames and destroy the log, so a second
// Open fails immediately with a clear error instead. The lock is
// advisory but both owners would be this same code, which always asks.
// It dies with the process, so a kill -9 never leaves a stale lock.
func acquireDirLock(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "LOCK"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: data directory %s is locked by another process: %w", dir, err)
	}
	return f, nil
}

// releaseDirLock drops the flock (nil-safe).
func releaseDirLock(f *os.File) {
	if f == nil {
		return
	}
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}
