package upright

import (
	"testing"

	"repro/internal/config"
	"repro/internal/crypto"
	"repro/internal/ids"
	"repro/internal/pbft"
	"repro/internal/statemachine"
	"repro/internal/transport"
)

func TestSizing(t *testing.T) {
	cases := []struct{ m, c, n, q int }{
		{1, 1, 6, 4},  // the paper's f=2 scenario
		{2, 2, 11, 7}, // Fig 2(b)
		{3, 1, 12, 8}, // Fig 2(c)
		{1, 3, 10, 6}, // Fig 2(d)
		{0, 1, 3, 2},  // degenerate crash-only
	}
	for _, tc := range cases {
		if got := NetworkSize(tc.m, tc.c); got != tc.n {
			t.Errorf("NetworkSize(%d,%d) = %d, want %d", tc.m, tc.c, got, tc.n)
		}
		if got := Quorum(tc.m, tc.c); got != tc.q {
			t.Errorf("Quorum(%d,%d) = %d, want %d", tc.m, tc.c, got, tc.q)
		}
	}
}

func TestNewReplicaDerivesSize(t *testing.T) {
	net := transport.NewSimNetwork(transport.SimConfig{Seed: 1, PrivateSize: 6})
	defer net.Close()
	suite := crypto.NewHMACSuite(1, 6, 0)
	r, err := NewReplica(Options{
		Byz: 1, Crash: 1,
		Base: pbft.Options{
			ID: 0, Suite: suite, Network: net,
			StateMachine: statemachine.NewCounter(),
			Timing:       config.DefaultTiming(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Quorum() != 4 {
		t.Fatalf("quorum = %d, want 4", r.Quorum())
	}
	if _, err := NewReplica(Options{Byz: -1}); err == nil {
		t.Fatal("negative bound accepted")
	}
	_ = ids.ReplicaID(0)
}
