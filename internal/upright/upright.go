// Package upright instantiates the paper's S-UpRight comparator: the
// UpRight hybrid fault model (N = 3m + 2c + 1 replicas, quorums of
// 2m + c + 1) driven by a PBFT-style agreement protocol, exactly as
// Section 6 describes: "we use the UpRight hybrid model ... however, to
// ensure a fair comparison ... we use a PBFT-like protocol (i.e., PBFT
// protocol with less number of nodes) instead of the UpRight protocol."
//
// Unlike SeeMoRe, S-UpRight does not know *where* crash or Byzantine
// failures can occur, so it cannot pin the primary to a trusted node or
// shrink its receiving network — which is precisely the comparison the
// paper's evaluation draws.
package upright

import (
	"fmt"

	"repro/internal/pbft"
)

// Replica is an S-UpRight node: a PBFT engine with hybrid sizing.
type Replica = pbft.Replica

// Options mirrors pbft.Options but derives N from the failure bounds.
type Options struct {
	// Byz is m, the Byzantine bound.
	Byz int
	// Crash is c, the crash bound.
	Crash int
	// The remaining fields pass through to pbft.Options.
	Base pbft.Options
}

// NetworkSize returns the minimum S-UpRight cluster size 3m + 2c + 1.
func NetworkSize(byz, crash int) int { return 3*byz + 2*crash + 1 }

// Quorum returns the S-UpRight agreement quorum 2m + c + 1.
func Quorum(byz, crash int) int { return 2*byz + crash + 1 }

// NewReplica builds an S-UpRight replica with N = 3m + 2c + 1.
func NewReplica(opts Options) (*Replica, error) {
	if opts.Byz < 0 || opts.Crash < 0 {
		return nil, fmt.Errorf("upright: negative failure bound (m=%d, c=%d)", opts.Byz, opts.Crash)
	}
	base := opts.Base
	base.N = NetworkSize(opts.Byz, opts.Crash)
	base.Byz = opts.Byz
	base.Crash = opts.Crash
	return pbft.NewReplica(base)
}
