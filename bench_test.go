// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation (Section 6). Each testing.B benchmark runs one
// full experiment per iteration and prints the same rows/series the
// paper reports, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. The cmd/seemore-bench binary runs
// the same experiments with longer measurement windows and CLI control.
package repro

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/ids"
)

// benchOpts returns measurement windows sized for `go test -bench`: long
// enough for stable shapes, short enough that the full suite finishes in
// a few minutes. cmd/seemore-bench uses longer windows.
func benchOpts() bench.Options {
	return bench.Options{
		Warmup:  100 * time.Millisecond,
		Measure: 300 * time.Millisecond,
	}
}

func benchClients() []int { return []int{1, 4, 16, 64} }

const benchSeed = 20260612

func runFigureBenchmark(b *testing.B, id string) {
	b.Helper()
	fig, ok := bench.FigureByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	for i := 0; i < b.N; i++ {
		series, err := bench.RunFigure(fig, benchClients(), benchOpts(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			bench.PrintFigure(os.Stdout, fig, series)
			for _, s := range series {
				b.ReportMetric(bench.Peak(s)/1000, "peak-kreq/s:"+s.Label)
			}
		}
	}
}

// BenchmarkFigure2a reproduces Figure 2(a): f = 2 (c = 1, m = 1), 0/0.
// Expected shape: CFT ≥ Lion > Dog > Peacock > S-UpRight ≥ BFT.
func BenchmarkFigure2a(b *testing.B) { runFigureBenchmark(b, "2a") }

// BenchmarkFigure2b reproduces Figure 2(b): f = 4 (c = 2, m = 2), 0/0.
// Expected shape: Dog ≈ Lion; Peacock beats S-UpRight and BFT.
func BenchmarkFigure2b(b *testing.B) { runFigureBenchmark(b, "2b") }

// BenchmarkFigure2c reproduces Figure 2(c): f = 4 (c = 1, m = 3), 0/0.
// Expected shape: the m-heavy mix pulls SeeMoRe toward BFT's cost.
func BenchmarkFigure2c(b *testing.B) { runFigureBenchmark(b, "2c") }

// BenchmarkFigure2d reproduces Figure 2(d): f = 4 (c = 3, m = 1), 0/0.
// Expected shape: Dog and Peacock (public-cloud agreement, small m) beat
// Lion and CFT (whose quorums grew with c).
func BenchmarkFigure2d(b *testing.B) { runFigureBenchmark(b, "2d") }

// BenchmarkFigure3a reproduces Figure 3(a): benchmark 0/4 (4 KB replies).
func BenchmarkFigure3a(b *testing.B) { runFigureBenchmark(b, "3a") }

// BenchmarkFigure3b reproduces Figure 3(b): benchmark 4/0 (4 KB
// requests). Request payloads hurt more than replies: every protocol
// retransmits the request between replicas.
func BenchmarkFigure3b(b *testing.B) { runFigureBenchmark(b, "3b") }

// BenchmarkFigure4 reproduces Figure 4: the throughput timeline across a
// primary crash with c = m = 1. Expected shape: outage(Lion) <
// outage(Dog) < outage(Peacock) < outage(S-UpRight/BFT), full recovery
// after.
func BenchmarkFigure4(b *testing.B) {
	opts := bench.TimelineOptions{
		Clients:   16,
		Bucket:    20 * time.Millisecond,
		RunFor:    1800 * time.Millisecond,
		FailAfter: 600 * time.Millisecond,
	}
	for i := 0; i < b.N; i++ {
		var tls []bench.Timeline
		for _, comp := range bench.Figure4Competitors(benchSeed) {
			tl, err := bench.RunTimeline(comp.Label, comp.Spec, opts, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			tls = append(tls, tl)
		}
		if i == 0 {
			bench.PrintTimelines(os.Stdout, tls, opts)
			for _, tl := range tls {
				b.ReportMetric(float64(tl.Outage.Milliseconds()), "outage-ms:"+tl.Label)
			}
		}
	}
}

// BenchmarkTable1 reproduces Table 1: phases, message complexity,
// receiving network and quorum sizes (analytic) alongside measured
// messages and bytes per request from an instrumented run.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.MeasureTable1(1, 1, 50, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			bench.PrintTable1(os.Stdout, rows, 1, 1)
			for _, r := range rows {
				b.ReportMetric(r.MeasuredMsgs, "msgs/req:"+r.Protocol)
			}
		}
	}
}

// BenchmarkAblationSigner isolates signature-scheme cost on the Lion
// mode: ed25519 vs HMAC vs none.
func BenchmarkAblationSigner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.AblationSigner(benchClients(), benchOpts(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			bench.PrintAblation(os.Stdout, "signature scheme (Lion, 0/0)", "clients", series)
		}
	}
}

// BenchmarkAblationProxyCount measures the cost of over-provisioning the
// public cloud beyond 3m+1 nodes in the Dog mode.
func BenchmarkAblationProxyCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.AblationProxyCount(benchClients(), benchOpts(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			bench.PrintAblation(os.Stdout, "public cloud size (Dog, 0/0)", "clients", series)
		}
	}
}

// BenchmarkAblationCommitPayload compares Lion commits carrying µ (the
// paper's choice) against digest-only commits on the 4/0 benchmark.
func BenchmarkAblationCommitPayload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.AblationCommitPayload(benchClients(), benchOpts(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			bench.PrintAblation(os.Stdout, "Lion commit payload (4/0)", "clients", series)
		}
	}
}

// BenchmarkAblationCheckpointPeriod sweeps the checkpoint period on the
// Lion mode.
func BenchmarkAblationCheckpointPeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.AblationCheckpointPeriod(benchClients(), benchOpts(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			bench.PrintAblation(os.Stdout, "checkpoint period (Lion, 0/0)", "clients", series)
		}
	}
}

// BenchmarkAblationBatchSize sweeps the primary's request batch size
// (1, 8, 64) across all three SeeMoRe modes: the batched-vs-unbatched
// throughput comparison for the request-batching pipeline.
func BenchmarkAblationBatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.AblationBatchSizeAllModes(benchClients(), benchOpts(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			bench.PrintAblation(os.Stdout, "request batch size (all modes, 0/0, ed25519)", "clients", series)
		}
	}
}

// BenchmarkAblationPipeline crosses the primary's pipeline depth
// (1 = stop-and-wait, 4, 16) with the batch size (1, 8) on Lion: how
// much throughput comes from overlapping agreement round trips versus
// packing more requests per slot.
func BenchmarkAblationPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := bench.AblationPipeline(ids.Lion, benchClients(), benchOpts(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			bench.PrintAblation(os.Stdout, "pipeline depth × batch size (Lion, 0/0, ed25519)", "clients", series)
		}
	}
}

// BenchmarkAblationCrossCloudLatency sweeps the private↔public distance
// to find the Lion/Peacock crossover that motivates Section 5.3.
func BenchmarkAblationCrossCloudLatency(b *testing.B) {
	lat := []time.Duration{
		50 * time.Microsecond,
		250 * time.Microsecond,
		1 * time.Millisecond,
		4 * time.Millisecond,
	}
	for i := 0; i < b.N; i++ {
		series, err := bench.AblationCrossCloudLatency(lat, 16, benchOpts(), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			bench.PrintAblation(os.Stdout, "cross-cloud one-way latency (clients near public cloud)", "lat(µs)", series)
			fmt.Println()
		}
	}
}
