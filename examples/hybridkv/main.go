// Hybridkv: a replicated bank on a hybrid cloud with a live Byzantine
// replica.
//
//	go run ./examples/hybridkv
//
// This is the scenario the paper's introduction motivates: a small
// enterprise owns two trusted servers and rents four public-cloud nodes,
// one of which turns out to be malicious. The example runs balance
// transfers (non-idempotent read-modify-write operations) through the
// Dog mode — agreement happens entirely on the rented nodes while the
// private cloud only sequences — and shows that money is conserved even
// though a rented node actively lies in the agreement.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/ids"
	"repro/internal/statemachine"
)

func main() {
	spec := cluster.Spec{
		Protocol: cluster.SeeMoRe,
		Mode:     ids.Dog,
		Crash:    1,
		Byz:      1,
		Seed:     7,
	}
	// Replica 5 (a rented public node) signs corrupted votes: validly
	// authenticated lies, the strongest generic misbehaviour the harness
	// injects.
	spec.Byzantine = map[ids.ReplicaID]cluster.Behavior{5: cluster.BehaviorCorrupt}

	c, err := cluster.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()
	fmt.Printf("bank up: %v in %s mode, replica 5 is Byzantine (%s)\n",
		c.Membership, spec.Mode, spec.Byzantine[5])

	bank := c.NewClient(0)
	mustOK := func(op []byte, what string) []byte {
		res, err := bank.Invoke(op)
		if err != nil {
			log.Fatalf("%s: %v", what, err)
		}
		status, payload := statemachine.DecodeResult(res)
		if status != statemachine.KVOK {
			log.Fatalf("%s: status %d", what, status)
		}
		return payload
	}

	// Open two accounts with 1000 each.
	balance := func(n uint64) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, n)
		return b
	}
	mustOK(statemachine.EncodePut("alice", balance(1000)), "open alice")
	mustOK(statemachine.EncodePut("bob", balance(1000)), "open bob")

	// Transfer 10 from alice to bob, fifty times. EncodeAdd is not
	// idempotent: any double-execution or lost update would break the
	// invariant below.
	for i := 0; i < 50; i++ {
		mustOK(statemachine.EncodeAdd("alice", -10), "debit")
		mustOK(statemachine.EncodeAdd("bob", +10), "credit")
	}

	aliceB := binary.BigEndian.Uint64(mustOK(statemachine.EncodeGet("alice"), "read alice"))
	bobB := binary.BigEndian.Uint64(mustOK(statemachine.EncodeGet("bob"), "read bob"))
	fmt.Printf("after 50 transfers: alice=%d bob=%d (sum %d)\n", aliceB, bobB, aliceB+bobB)
	if aliceB != 500 || bobB != 1500 {
		log.Fatalf("BUG: balances wrong despite m=1 tolerance")
	}
	fmt.Println("money conserved with a corrupt rented node in the quorum: OK")
}
