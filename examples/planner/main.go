// Planner: a walk-through of the Section-4 capacity-planning method.
//
//	go run ./examples/planner
//
// An enterprise owns a small private cloud and must decide how many
// nodes to rent from candidate public-cloud providers with different
// failure statistics — including the regimes where renting is
// unnecessary or futile.
package main

import (
	"errors"
	"fmt"

	"repro/internal/config"
	"repro/internal/ids"
)

func main() {
	fmt.Println("SeeMoRe capacity planning (Section 4)")
	fmt.Println()

	// The paper's worked example: 2 servers, 1 may crash, provider
	// advertises a 30% malicious ratio.
	show(2, 1, func() (int, error) { return config.PublicNodesUniform(2, 1, 0.3) },
		"provider A: uniform failure ratio α = 0.30")

	// A healthier provider needs fewer nodes.
	show(2, 1, func() (int, error) { return config.PublicNodesUniform(2, 1, 0.1) },
		"provider B: uniform failure ratio α = 0.10")

	// A provider that distinguishes malicious from crash statistics
	// (Equation 3).
	show(2, 1, func() (int, error) { return config.PublicNodesUniformMixed(2, 1, 0.1, 0.1) },
		"provider C: α = 0.10 malicious, β = 0.10 crash")

	// A provider that guarantees a concurrent-failure bound instead.
	show(2, 1, func() (int, error) { return config.PublicNodesBounded(2, 1, 1) },
		"provider D: at most M = 1 concurrent Byzantine failure")

	// Degenerate regimes the paper walks through.
	show(3, 1, func() (int, error) { return config.PublicNodesUniform(3, 1, 0.3) },
		"a private cloud with S = 3 ≥ 2c+1")
	show(1, 1, func() (int, error) { return config.PublicNodesUniform(1, 1, 0.3) },
		"a private cloud where every node may crash (S = c)")
	show(2, 1, func() (int, error) { return config.PublicNodesUniform(2, 1, 0.4) },
		"provider E: α = 0.40 ≥ 1/3")
}

func show(s, c int, plan func() (int, error), scenario string) {
	fmt.Printf("S=%d c=%d — %s\n", s, c, scenario)
	p, err := plan()
	switch {
	case errors.Is(err, config.ErrNoRentalNeeded):
		fmt.Printf("  → no rental needed; run Paxos on the private cloud alone\n\n")
	case errors.Is(err, config.ErrPrivateCloudUseless):
		fmt.Printf("  → private cloud contributes nothing; rent everything and run PBFT\n\n")
	case errors.Is(err, config.ErrPublicCloudTooFaulty):
		fmt.Printf("  → infeasible: no rental size can satisfy N = 3m+2c+1\n\n")
	case err != nil:
		fmt.Printf("  → error: %v\n\n", err)
	default:
		m := estimateM(p, s, c)
		fmt.Printf("  → rent P = %d nodes (N = %d)\n", p, s+p)
		if mb, merr := ids.NewMembership(s, p, c, m); merr == nil {
			fmt.Printf("    Lion quorum %d, Dog/Peacock quorum %d over %d proxies\n",
				mb.AgreementQuorum(ids.Lion), mb.AgreementQuorum(ids.Dog), mb.ProxyCount())
		}
		fmt.Println()
	}
}

// estimateM back-solves the Byzantine bound the rented size supports:
// the largest m with S+P ≥ 3m+2c+1.
func estimateM(p, s, c int) int {
	m := (s + p - 2*c - 1) / 3
	if m < 0 {
		m = 0
	}
	return m
}
