// Quickstart: bring up a hybrid SeeMoRe cluster in-process and run a few
// replicated key/value operations through it.
//
//	go run ./examples/quickstart
//
// The cluster is the paper's base deployment (Section 6.1): S = 2
// private nodes that may crash (c = 1) and P = 4 public nodes of which
// one may be Byzantine (m = 1), N = 6 in total, running in Lion mode.
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/ids"
	"repro/internal/statemachine"
)

func main() {
	// 1. Describe the deployment: protocol, mode, failure bounds.
	c, err := cluster.New(cluster.Spec{
		Protocol: cluster.SeeMoRe,
		Mode:     ids.Lion,
		Crash:    1, // c: crash failures tolerated in the private cloud
		Byz:      1, // m: Byzantine failures tolerated in the public cloud
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()
	fmt.Printf("cluster up: %d replicas (%v), mode %s\n",
		c.N, c.Membership, c.Spec.Mode)

	// 2. Get a client and run operations. The client signs requests,
	// finds the primary, and collects the mode-appropriate reply quorum.
	kv := c.NewClient(0)

	if _, err := kv.Invoke(statemachine.EncodePut("greeting", []byte("hello, hybrid cloud"))); err != nil {
		log.Fatal(err)
	}
	res, err := kv.Invoke(statemachine.EncodeGet("greeting"))
	if err != nil {
		log.Fatal(err)
	}
	status, value := statemachine.DecodeResult(res)
	if status != statemachine.KVOK {
		log.Fatalf("get failed with status %d", status)
	}
	fmt.Printf("replicated read: greeting = %q\n", value)

	// 3. Crash the one tolerated private backup and keep going: the
	// protocol does not miss a beat.
	c.CrashNode(1)
	if _, err := kv.Invoke(statemachine.EncodePut("still", []byte("alive"))); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote through the cluster with a crashed private backup: OK")
}
