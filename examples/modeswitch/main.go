// Modeswitch: dynamic mode switching under live load (Section 5.4).
//
//	go run ./examples/modeswitch
//
// A client stream runs continuously while the cluster switches
// Lion → Dog → Peacock → Lion. The client never coordinates with the
// switch: it learns the new mode and primary from the mode and view
// numbers replicas echo in their replies, exactly as the paper
// describes.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/statemachine"
)

func main() {
	c, err := cluster.New(cluster.Spec{
		Protocol: cluster.SeeMoRe,
		Mode:     ids.Lion,
		Crash:    1,
		Byz:      1,
		Seed:     11,
		Timing: config.Timing{
			ViewChange:       150 * time.Millisecond,
			ClientRetry:      250 * time.Millisecond,
			CheckpointPeriod: 512,
			HighWaterMarkLag: 4096,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	// Background load: one client hammering counters.
	var ops, failures atomic.Int64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		kv := c.NewClient(0)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("k%d", i%32)
			if _, err := kv.Invoke(statemachine.EncodePut(key, []byte("v"))); err != nil {
				failures.Add(1)
				continue
			}
			ops.Add(1)
		}
	}()

	report := func(phase string) {
		//lint:allow clockcheck demo pacing: the example sleeps real time between phase reports
		time.Sleep(500 * time.Millisecond)
		fmt.Printf("%-22s %6d ops completed, %d client timeouts\n", phase, ops.Load(), failures.Load())
	}

	report("running in Lion")

	// Switching into Dog at view v+1 is driven by the Dog primary of
	// that view; switching into Peacock by its transferer. The cluster
	// helper below finds the right trusted replica.
	switchMode := func(mode ids.Mode) {
		// Both Lion/Dog primaries and Peacock transferers are trusted
		// replicas; with S=2 the driver of view v+1 alternates between
		// replicas 0 and 1, so ask both — the wrong one ignores the
		// request (the driver check is inside the replica).
		c.SeeMoReNode(0).RequestModeSwitch(mode)
		c.SeeMoReNode(1).RequestModeSwitch(mode)
	}

	switchMode(ids.Dog)
	report("switched to Dog")

	switchMode(ids.Peacock)
	report("switched to Peacock")

	switchMode(ids.Lion)
	report("switched back to Lion")

	close(stop)
	<-done
	fmt.Printf("total: %d operations across three live mode switches, %d timeouts\n",
		ops.Load(), failures.Load())
	if ops.Load() == 0 {
		log.Fatal("no operations completed")
	}
}
