// Command seemore-bench regenerates the paper's evaluation with CLI
// control over measurement windows and load sweeps.
//
//	seemore-bench -exp all                # everything (several minutes)
//	seemore-bench -exp fig2a              # one figure
//	seemore-bench -exp table1
//	seemore-bench -exp fig4
//	seemore-bench -exp ablation-signer
//	seemore-bench -exp ablation-pipeline
//	seemore-bench -exp fig2a -measure 1s -clients 1,4,16,64,128
//	seemore-bench -exp fig2a -pipeline 16      # pipelined primaries everywhere
//	seemore-bench -exp hotpath -json BENCH_hotpath.json
//	seemore-bench -exp fig2a -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/config"
	"repro/internal/ids"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: all, table1, fig2a, fig2b, fig2c, fig2d, fig3a, fig3b, fig4, ablation-signer, ablation-proxies, ablation-commit, ablation-checkpoint, ablation-crosscloud, ablation-batch, ablation-pipeline, ablation-shard, ablation-txn, ablation-readmix, ablation-reshard, hotpath (microbenchmarks; not part of all)")
		measure  = flag.Duration("measure", 500*time.Millisecond, "measurement window per load point")
		warmup   = flag.Duration("warmup", 150*time.Millisecond, "warmup before each measurement")
		clients  = flag.String("clients", "1,2,4,8,16,32,64", "comma-separated closed-loop client counts")
		seed     = flag.Int64("seed", 1, "simulation seed")
		pipeline = flag.Int("pipeline", 0, "pipeline depth applied to every experiment cluster (0: off)")
		shards   = flag.String("shards", "1,2,4", "comma-separated shard counts for ablation-shard")
		shardCl  = flag.Int("shard-clients", 48, "closed-loop clients per ablation-shard point (fixed across shard counts)")
		reqs     = flag.Int("table1-requests", 100, "requests per protocol for Table 1 message counting")
		retries  = flag.Int("max-retries", 0, "client broadcast retransmissions per request (0: default)")
		retryTmo = flag.Duration("retry-timeout", 0, "client wait before the first retransmission (0: the protocol timer)")
		backoff  = flag.Float64("retry-backoff", 0, "client timeout multiplier per retry (≤1: fixed)")
		jsonOut  = flag.String("json", "", "also write every measured sweep to this JSON file (machine-readable; CI uploads it as an artifact)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file (inspect with `go tool pprof`)")
		memProf  = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			log.Printf("wrote CPU profile to %s", *cpuProf)
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
				return
			}
			log.Printf("wrote heap profile to %s", *memProf)
		}()
	}

	counts, err := parseCounts(*clients)
	if err != nil {
		log.Fatal(err)
	}
	shardCounts, err := parseCounts(*shards)
	if err != nil {
		log.Fatal(err)
	}
	opts := bench.Options{
		Warmup: *warmup, Measure: *measure,
		Pipeline: config.Pipelining{Depth: *pipeline},
		Client:   config.Client{MaxRetries: *retries, RetryTimeout: *retryTmo, Backoff: *backoff},
	}
	if err := opts.Client.Validate(); err != nil {
		log.Fatal(err)
	}

	var collected []bench.JSONExperiment
	directJSON := false // set when an experiment wrote -json itself
	record := func(name string, series []bench.Series) {
		if *jsonOut == "" {
			return
		}
		collected = append(collected, bench.JSONExperiment{Name: name, Series: bench.ExportSeries(series)})
	}

	run := func(name string) {
		switch name {
		case "table1":
			rows, err := bench.MeasureTable1(1, 1, *reqs, *seed)
			if err != nil {
				log.Fatalf("table1: %v", err)
			}
			bench.PrintTable1(os.Stdout, rows, 1, 1)
		case "fig2a", "fig2b", "fig2c", "fig2d", "fig3a", "fig3b":
			id := strings.TrimPrefix(name, "fig")
			fig, ok := bench.FigureByID(id)
			if !ok {
				log.Fatalf("unknown figure %s", id)
			}
			series, err := bench.RunFigure(fig, counts, opts, *seed)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			record(name, series)
			bench.PrintFigure(os.Stdout, fig, series)
		case "fig4":
			tlOpts := bench.TimelineOptions{
				Clients:   16,
				Bucket:    20 * time.Millisecond,
				RunFor:    2400 * time.Millisecond,
				FailAfter: 800 * time.Millisecond,
			}
			var tls []bench.Timeline
			for _, comp := range bench.Figure4Competitors(*seed) {
				tl, err := bench.RunTimeline(comp.Label, comp.Spec, tlOpts, *seed)
				if err != nil {
					log.Fatalf("fig4 %s: %v", comp.Label, err)
				}
				tls = append(tls, tl)
			}
			bench.PrintTimelines(os.Stdout, tls, tlOpts)
		case "ablation-signer":
			series, err := bench.AblationSigner(counts, opts, *seed)
			if err != nil {
				log.Fatal(err)
			}
			record(name, series)
			bench.PrintAblation(os.Stdout, "signature scheme (Lion, 0/0)", "clients", series)
		case "ablation-proxies":
			series, err := bench.AblationProxyCount(counts, opts, *seed)
			if err != nil {
				log.Fatal(err)
			}
			record(name, series)
			bench.PrintAblation(os.Stdout, "public cloud size (Dog, 0/0)", "clients", series)
		case "ablation-commit":
			series, err := bench.AblationCommitPayload(counts, opts, *seed)
			if err != nil {
				log.Fatal(err)
			}
			record(name, series)
			bench.PrintAblation(os.Stdout, "Lion commit payload (4/0)", "clients", series)
		case "ablation-checkpoint":
			series, err := bench.AblationCheckpointPeriod(counts, opts, *seed)
			if err != nil {
				log.Fatal(err)
			}
			record(name, series)
			bench.PrintAblation(os.Stdout, "checkpoint period (Lion, 0/0)", "clients", series)
		case "ablation-batch":
			series, err := bench.AblationBatchSizeAllModes(counts, opts, *seed)
			if err != nil {
				log.Fatal(err)
			}
			record(name, series)
			bench.PrintAblation(os.Stdout, "request batch size (all modes, 0/0, ed25519)", "clients", series)
		case "ablation-pipeline":
			series, err := bench.AblationPipeline(ids.Lion, counts, opts, *seed)
			if err != nil {
				log.Fatal(err)
			}
			record(name, series)
			bench.PrintAblation(os.Stdout, "pipeline depth × batch size (Lion, 0/0, ed25519)", "clients", series)
		case "ablation-shard":
			series, err := bench.AblationShard(ids.Lion, shardCounts, *shardCl, opts, *seed)
			if err != nil {
				log.Fatal(err)
			}
			record(name, series)
			bench.PrintAblation(os.Stdout, "shard count (Lion, fixed per-shard cluster, put workload)", "clients", series)
		case "ablation-txn":
			series, err := bench.AblationTxn(ids.Lion, shardCounts, *shardCl, opts, *seed)
			if err != nil {
				log.Fatal(err)
			}
			record(name, series)
			bench.PrintAblation(os.Stdout, "cross-shard 2PC vs single-key (Lion, put workload)", "clients", series)
		case "ablation-readmix":
			series, err := bench.AblationReadMix(*shardCl, opts, *seed)
			if err != nil {
				log.Fatal(err)
			}
			record(name, series)
			bench.PrintAblation(os.Stdout, "read consistency × read fraction (Lion, leases on)", "clients", series)
		case "ablation-reshard":
			series, err := bench.AblationReshard(*shardCl, opts, *seed)
			if err != nil {
				log.Fatal(err)
			}
			record(name, series)
			bench.PrintAblation(os.Stdout, "throughput before/during/after a live 2→4 shard split (Lion, elastic)", "clients", series)
		case "hotpath":
			// Microbenchmarks of the codec/crypto/WAL hot paths; excluded
			// from "all" (they measure library layers, not the protocols)
			// and written with their own JSON schema.
			rep, err := bench.RunHotpath()
			if err != nil {
				log.Fatalf("hotpath: %v", err)
			}
			bench.PrintHotpath(os.Stdout, rep)
			if *jsonOut != "" {
				if err := bench.WriteHotpathJSON(*jsonOut, rep); err != nil {
					log.Fatal(err)
				}
				log.Printf("wrote hot-path report to %s", *jsonOut)
				directJSON = true
			}
		case "ablation-crosscloud":
			lat := []time.Duration{50 * time.Microsecond, 250 * time.Microsecond, time.Millisecond, 4 * time.Millisecond}
			series, err := bench.AblationCrossCloudLatency(lat, 16, opts, *seed)
			if err != nil {
				log.Fatal(err)
			}
			// Not recorded to -json: this sweep re-purposes the Clients
			// field to carry the swept latency in µs, which would read
			// as a client count in the machine-readable schema.
			bench.PrintAblation(os.Stdout, "cross-cloud latency (Lion vs Peacock)", "lat(µs)", series)
		default:
			log.Fatalf("unknown experiment %q", name)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, name := range []string{
			"table1", "fig2a", "fig2b", "fig2c", "fig2d", "fig3a", "fig3b", "fig4",
			"ablation-signer", "ablation-proxies", "ablation-commit",
			"ablation-checkpoint", "ablation-crosscloud", "ablation-batch",
			"ablation-pipeline", "ablation-shard", "ablation-txn",
			"ablation-readmix", "ablation-reshard",
		} {
			fmt.Printf("=== %s ===\n", name)
			run(name)
		}
	} else {
		run(*exp)
	}

	if *jsonOut != "" && !directJSON {
		if err := bench.WriteJSONReport(*jsonOut, opts, *seed, collected); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d experiment(s) to %s", len(collected), *jsonOut)
	}
}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad client count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
