// Command seemore-vet is the repository's invariant multichecker: it
// runs the custom static-analysis passes from internal/analysis
// (clockcheck, releasecheck, simdet, errsticky) over the tree and
// fails on any finding. The stock correctness analyzers (copylocks,
// unusedresult, lostcancel, ...) ride alongside in `make lint` via
// `go vet`; seemore-vet carries the checks no stock tool knows about —
// the clock-injection, pooled-frame, sim-determinism and sticky-error
// contracts earlier PRs established.
//
// Usage:
//
//	seemore-vet [-list] [-analyzers clockcheck,simdet] [packages]
//
// Packages default to ./... relative to the current directory.
// Deliberate exceptions are annotated at the offending line:
//
//	//lint:allow <analyzer> <reason>
//
// or for whole files whose job is exempt (benchmark harnesses, the
// real-time network emulator):
//
//	//lint:file-allow <analyzer> <reason>
//
// The reason is mandatory; an allow without one suppresses nothing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	names := flag.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *names != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*names, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "seemore-vet:", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "seemore-vet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seemore-vet:", err)
		os.Exit(2)
	}

	bad := false
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "seemore-vet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			bad = true
			fmt.Println(d)
		}
	}
	if bad {
		os.Exit(1)
	}
}
