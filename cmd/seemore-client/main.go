// Command seemore-client issues key/value operations against a TCP
// SeeMoRe cluster started with cmd/seemore.
//
//	seemore-client -peers 0=127.0.0.1:7000,...,5=127.0.0.1:7005 \
//	  -s 2 -p 4 -c 1 -m 1 -op put -key greeting -value hello
//	seemore-client ... -op get -key greeting
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/client"
	"repro/internal/config"
	"repro/internal/crypto"
	"repro/internal/ids"
	"repro/internal/statemachine"
	"repro/internal/transport"
)

func main() {
	var (
		id      = flag.Int64("client", 0, "client id")
		s       = flag.Int("s", 2, "private cloud size S")
		p       = flag.Int("p", 4, "public cloud size P")
		c       = flag.Int("c", 1, "crash bound c")
		m       = flag.Int("m", 1, "Byzantine bound m")
		mode    = flag.String("mode", "lion", "cluster's initial mode: lion, dog, peacock")
		peers   = flag.String("peers", "", "comma-separated id=host:port replica list")
		seed    = flag.Int64("seed", 1, "shared key-derivation seed")
		clients = flag.Int64("clients", 64, "keyring client count (must match the servers)")
		suiteFl = flag.String("suite", "ed25519", "signature suite: ed25519, hmac, none")
		op      = flag.String("op", "get", "operation: get, put, del, add")
		key     = flag.String("key", "", "key")
		value   = flag.String("value", "", "value (put)")
		delta   = flag.Int64("delta", 0, "delta (add)")
		repeat  = flag.Int("n", 1, "repeat the operation n times")
	)
	flag.Parse()

	mb, err := ids.NewMembership(*s, *p, *c, *m)
	if err != nil {
		log.Fatalf("membership: %v", err)
	}
	md, err := parseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	peerMap, err := parsePeers(*peers)
	if err != nil {
		log.Fatalf("peers: %v", err)
	}
	if len(peerMap) != mb.N() {
		log.Fatalf("peer list has %d entries, cluster has %d replicas", len(peerMap), mb.N())
	}

	node, err := transport.NewTCPNode(transport.ClientAddr(ids.ClientID(*id)), "127.0.0.1:0", peerMap)
	if err != nil {
		log.Fatalf("client transport: %v", err)
	}
	var suite crypto.Suite
	switch strings.ToLower(*suiteFl) {
	case "ed25519":
		suite = crypto.NewEd25519Suite(*seed, mb.N(), *clients)
	case "hmac":
		suite = crypto.NewHMACSuite(*seed, mb.N(), *clients)
	case "none":
		suite = crypto.NoopSuite{}
	default:
		log.Fatalf("unknown suite %q", *suiteFl)
	}

	cl := client.New(ids.ClientID(*id), suite, transport.Single(node),
		client.NewSeeMoRePolicy(mb, md), config.DefaultTiming())

	var encoded []byte
	switch strings.ToLower(*op) {
	case "get":
		encoded = statemachine.EncodeGet(*key)
	case "put":
		encoded = statemachine.EncodePut(*key, []byte(*value))
	case "del":
		encoded = statemachine.EncodeDelete(*key)
	case "add":
		encoded = statemachine.EncodeAdd(*key, *delta)
	default:
		log.Fatalf("unknown op %q", *op)
	}

	for i := 0; i < *repeat; i++ {
		res, err := cl.Invoke(encoded)
		if err != nil {
			log.Fatalf("invoke: %v", err)
		}
		status, payload := statemachine.DecodeResult(res)
		switch status {
		case statemachine.KVOK:
			fmt.Printf("OK %q\n", payload)
		case statemachine.KVNotFound:
			fmt.Println("NOT FOUND")
		default:
			fmt.Println("BAD OPERATION")
		}
	}
}

func parseMode(s string) (ids.Mode, error) {
	switch strings.ToLower(s) {
	case "lion":
		return ids.Lion, nil
	case "dog":
		return ids.Dog, nil
	case "peacock":
		return ids.Peacock, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

func parsePeers(s string) (map[transport.Addr]string, error) {
	out := make(map[transport.Addr]string)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("malformed peer entry %q", part)
		}
		var id int
		if _, err := fmt.Sscanf(kv[0], "%d", &id); err != nil {
			return nil, fmt.Errorf("malformed peer id %q", kv[0])
		}
		out[transport.ReplicaAddr(ids.ReplicaID(id))] = kv[1]
	}
	return out, nil
}
