// Command seemore-client issues key/value operations against a TCP
// SeeMoRe cluster started with cmd/seemore.
//
//	seemore-client -peers 0=127.0.0.1:7000,...,5=127.0.0.1:7005 \
//	  -s 2 -p 4 -c 1 -m 1 -op put -key greeting -value hello
//	seemore-client ... -op get -key greeting
//
// Against a sharded deployment, prefix each peer with its group and
// pass the shard count; single-key operations route to their owner
// group and -op mget fans reads out across groups:
//
//	seemore-client -shards 2 \
//	  -peers 0:0=127.0.0.1:7000,...,0:5=127.0.0.1:7005,1:0=127.0.0.1:7100,...,1:5=127.0.0.1:7105 \
//	  -op put -key greeting -value hello
//	seemore-client -shards 2 -peers ... -op mget -keys greeting,other
//
// txput writes several keys atomically — two-phase commit across their
// owner groups when they span shards:
//
//	seemore-client -shards 2 -peers ... -op txput -keys k1,k2 -values v1,v2
//
// Reads take a -consistency level: linearizable (the default) orders
// the read through consensus; leased lets a leader with a valid lease
// answer locally; stale reads any trusted replica's local state,
// bounded by -max-staleness. Range scans stream merge-sorted pairs
// across shards and page with -lo/-hi/-limit:
//
//	seemore-client ... -op get -key greeting -consistency leased
//	seemore-client ... -op get -key greeting -consistency stale -max-staleness 100ms
//	seemore-client -shards 2 -peers ... -op scan -lo user/ -hi user0 -limit 50
//
// Against an elastic deployment (one whose groups were placement-
// bootstrapped and may be mid-reshard), -elastic makes the router
// follow epoch-stamped placement: a group that no longer owns a key
// rejects the request with the current map attached, and the router
// adopts it and reroutes. -v logs each such wrong-epoch retry:
//
//	seemore-client -shards 2 -peers ... -elastic -v -op get -key greeting
//
// Request timestamps are seeded from wall-clock nanoseconds, so a
// restarted process reusing a -client id keeps getting replies from a
// durable cluster (the replicated client table only executes strictly
// newer timestamps); -initial-ts overrides the seed for reproducible
// runs.
package main

//lint:file-allow clockcheck CLI: -initial-ts mints wall-clock client timestamps and latency lines report real elapsed time

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/config"
	"repro/internal/crypto"
	"repro/internal/ids"
	"repro/internal/placement"
	"repro/internal/shard"
	"repro/internal/transport"
)

func main() {
	var (
		id       = flag.Int64("client", 0, "client id")
		s        = flag.Int("s", 2, "private cloud size S")
		p        = flag.Int("p", 4, "public cloud size P")
		c        = flag.Int("c", 1, "crash bound c")
		m        = flag.Int("m", 1, "Byzantine bound m")
		mode     = flag.String("mode", "lion", "cluster's initial mode: lion, dog, peacock")
		peers    = flag.String("peers", "", "comma-separated [group:]id=host:port replica list")
		shards   = flag.Int("shards", 1, "consensus groups the deployment is partitioned into")
		seed     = flag.Int64("seed", 1, "shared key-derivation seed")
		clients  = flag.Int64("clients", 64, "keyring client count (must match the servers)")
		suiteFl  = flag.String("suite", "ed25519", "signature suite: ed25519, hmac, none")
		op       = flag.String("op", "get", "operation: get, put, del, add, scan, mget, txput")
		key      = flag.String("key", "", "key")
		keys     = flag.String("keys", "", "comma-separated keys (mget, txput)")
		value    = flag.String("value", "", "value (put)")
		values   = flag.String("values", "", "comma-separated values (txput)")
		delta    = flag.Int64("delta", 0, "delta (add)")
		consist  = flag.String("consistency", "linearizable", "read consistency: linearizable, leased, stale (get, scan)")
		maxStale = flag.Duration("max-staleness", 0, "freshness bound for stale reads (0: only this client's own monotonic floor)")
		scanLo   = flag.String("lo", "", "scan range start, inclusive")
		scanHi   = flag.String("hi", "", "scan range end, exclusive (empty: unbounded)")
		scanN    = flag.Int("limit", 100, "max pairs per scan")
		repeat   = flag.Int("n", 1, "repeat the operation n times")
		retries  = flag.Int("max-retries", 0, "broadcast retransmissions per request (0: default)")
		retryTmo = flag.Duration("retry-timeout", 0, "wait before the first retransmission (0: the protocol timer)")
		backoff  = flag.Float64("retry-backoff", 0, "timeout multiplier per retry (≤1: fixed timeout)")
		initTS   = flag.Int64("initial-ts", -1, "initial request timestamp (-1: wall-clock nanos, the safe default for reused client ids)")
		elastic  = flag.Bool("elastic", false, "follow epoch-stamped placement: adopt the map attached to wrong-epoch rejections and reroute (epoch 1 routes identically to the static partitioner)")
		verbose  = flag.Bool("v", false, "log placement traffic: every wrong-epoch rejection absorbed and the epoch adopted")
	)
	flag.Parse()

	mb, err := ids.NewMembership(*s, *p, *c, *m)
	if err != nil {
		log.Fatalf("membership: %v", err)
	}
	md, err := parseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	sh := config.Sharding{Shards: *shards, ReplicasPerShard: mb.N()}.Normalized()
	if err := sh.Validate(); err != nil {
		log.Fatalf("sharding: %v", err)
	}
	// Seed the timestamp counter from the wall clock by default: the
	// replicated client table (which survives restarts on a durable
	// cluster) silently discards timestamps it has already seen, so a
	// restarted process reusing this client id must start above its
	// previous run's counter.
	ts := uint64(*initTS)
	if *initTS < 0 {
		ts = uint64(time.Now().UnixNano())
	}
	cc := config.Client{MaxRetries: *retries, RetryTimeout: *retryTmo, Backoff: *backoff, InitialTimestamp: ts}
	if err := cc.Validate(); err != nil {
		log.Fatalf("client config: %v", err)
	}
	groupPeers, err := parsePeers(*peers, sh.Shards)
	if err != nil {
		log.Fatalf("peers: %v", err)
	}
	for g := 0; g < sh.Shards; g++ {
		if len(groupPeers[g]) != mb.N() {
			log.Fatalf("group %d peer list has %d entries, cluster has %d replicas", g, len(groupPeers[g]), mb.N())
		}
	}

	var suite crypto.Suite
	switch strings.ToLower(*suiteFl) {
	case "ed25519":
		suite = crypto.NewEd25519Suite(*seed, mb.N(), *clients)
	case "hmac":
		suite = crypto.NewHMACSuite(*seed, mb.N(), *clients)
	case "none":
		suite = crypto.NoopSuite{}
	default:
		log.Fatalf("unknown suite %q", *suiteFl)
	}

	// One TCP node (and one underlying client) per group: the groups are
	// disjoint TCP clusters, and the router owns the key→group mapping.
	perGroup := make([]*client.Client, sh.Shards)
	for g := range perGroup {
		node, err := transport.NewTCPNode(transport.ClientAddr(ids.ClientID(*id)), "127.0.0.1:0", groupPeers[g])
		if err != nil {
			log.Fatalf("group %d client transport: %v", g, err)
		}
		perGroup[g] = client.NewWithConfig(ids.ClientID(*id), suite, transport.Single(node),
			client.NewSeeMoRePolicy(mb, md), config.DefaultTiming(), cc)
	}
	var router *client.Router
	if *elastic {
		// The bootstrap map at epoch 1 splits the hash space exactly as
		// the static partitioner does, so the two routers agree until a
		// reconfiguration bumps the epoch — at which point only this one
		// can follow the rejection to the new owner.
		pm, err := placement.Bootstrap(sh.Shards, sh.Shards, mb.N())
		if err != nil {
			log.Fatalf("placement: %v", err)
		}
		router, err = client.NewElasticRouter(perGroup, placement.NewCache(pm), nil)
		if err != nil {
			log.Fatalf("router: %v", err)
		}
	} else {
		var err error
		router, err = client.NewRouter(perGroup, shard.MustHashPartitioner(sh.Shards), nil)
		if err != nil {
			log.Fatalf("router: %v", err)
		}
	}
	defer router.Close()
	if *verbose {
		router.OnWrongEpoch = func(g ids.GroupID, m *placement.Map) {
			log.Printf("wrong epoch at group %d: adopting epoch %d placement and rerouting", int(g), m.Epoch)
		}
	}

	if strings.EqualFold(*op, "txput") {
		// Keys and values must stay positionally aligned, so both use
		// the same tokenization (trim, keep empties — an empty value is
		// legal, an empty key is not).
		ks := splitList(*keys)
		vs := splitList(*values)
		if len(ks) == 0 || len(ks) != len(vs) {
			log.Fatalf("txput needs -keys k1,k2,... and a matching -values v1,v2,... (got %d keys, %d values)", len(ks), len(vs))
		}
		vals := make([][]byte, len(vs))
		for i, v := range vs {
			if ks[i] == "" {
				log.Fatalf("txput key %d is empty", i)
			}
			vals[i] = []byte(v)
		}
		start := time.Now()
		if err := router.MultiPut(ks, vals); err != nil {
			log.Fatalf("txput: %v", err)
		}
		fmt.Printf("OK: %d keys committed atomically across %d shard(s) in %v\n",
			len(ks), router.Shards(), time.Since(start))
		return
	}

	if strings.EqualFold(*op, "mget") {
		ks := splitKeys(*keys)
		if len(ks) == 0 {
			log.Fatal("mget needs -keys k1,k2,...")
		}
		start := time.Now()
		vals, err := router.MultiGet(ks)
		if err != nil {
			log.Fatalf("mget: %v", err)
		}
		for i, k := range ks {
			if vals[i] == nil {
				fmt.Printf("%s: NOT FOUND\n", k)
			} else {
				fmt.Printf("%s: OK %q\n", k, vals[i])
			}
		}
		fmt.Printf("(%d keys across %d shard(s) in %v)\n", len(ks), router.Shards(), time.Since(start))
		return
	}

	ropts, err := parseReadOptions(*consist, *maxStale)
	if err != nil {
		log.Fatal(err)
	}
	kv := client.NewKV(router)
	for i := 0; i < *repeat; i++ {
		switch strings.ToLower(*op) {
		case "get":
			v, found, err := kv.Get(*key, ropts)
			switch {
			case err != nil:
				reportKVError("get", err)
			case found:
				fmt.Printf("OK %q\n", v)
			default:
				fmt.Println("NOT FOUND")
			}
		case "put":
			if err := kv.Put(*key, []byte(*value)); err != nil {
				reportKVError("put", err)
			} else {
				fmt.Printf("OK %q\n", []byte(nil))
			}
		case "del":
			found, err := kv.Delete(*key)
			switch {
			case err != nil:
				reportKVError("del", err)
			case found:
				fmt.Printf("OK %q\n", []byte(nil))
			default:
				fmt.Println("NOT FOUND")
			}
		case "add":
			sum, err := kv.Add(*key, *delta)
			if err != nil {
				reportKVError("add", err)
			} else {
				fmt.Printf("OK %d\n", sum)
			}
		case "scan":
			pairs, more, err := kv.Scan(*scanLo, *scanHi, *scanN, ropts)
			if err != nil {
				log.Fatalf("scan: %v", err)
			}
			for _, p := range pairs {
				fmt.Printf("%s: %q\n", p.Key, p.Value)
			}
			if more {
				fmt.Printf("(more keys remain; resume with -lo %q)\n", pairs[len(pairs)-1].Key+"\x00")
			} else {
				fmt.Printf("(%d pairs, range exhausted)\n", len(pairs))
			}
		default:
			log.Fatalf("unknown op %q", *op)
		}
	}
}

// parseReadOptions maps the -consistency / -max-staleness flags onto
// client.ReadOptions.
func parseReadOptions(consistency string, maxStaleness time.Duration) (client.ReadOptions, error) {
	var c client.Consistency
	switch strings.ToLower(consistency) {
	case "linearizable":
		c = client.Linearizable
	case "leased":
		c = client.Leased
	case "stale":
		c = client.Stale
	default:
		return client.ReadOptions{}, fmt.Errorf("unknown consistency %q (want linearizable, leased or stale)", consistency)
	}
	return client.ReadOptions{Consistency: c, MaxStaleness: maxStaleness}, nil
}

// reportKVError renders a typed facade error, keeping the LOCKED hint
// the hand-rolled decoder used to print.
func reportKVError(op string, err error) {
	var locked *client.LockedError
	if errors.As(err, &locked) {
		fmt.Printf("LOCKED by %v — an in-flight or abandoned transaction holds this key; retry, or issue a txput touching it to trigger presumed-abort recovery\n", locked.Holder)
		return
	}
	log.Fatalf("%s: %v", op, err)
}

func parseMode(s string) (ids.Mode, error) {
	switch strings.ToLower(s) {
	case "lion":
		return ids.Lion, nil
	case "dog":
		return ids.Dog, nil
	case "peacock":
		return ids.Peacock, nil
	default:
		return 0, fmt.Errorf("unknown mode %q", s)
	}
}

// parsePeers splits a peer list into per-group address maps. Entries
// are id=host:port (group 0) or group:id=host:port.
func parsePeers(s string, shards int) ([]map[transport.Addr]string, error) {
	out := make([]map[transport.Addr]string, shards)
	for g := range out {
		out[g] = make(map[transport.Addr]string)
	}
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("malformed peer entry %q", part)
		}
		g, id := 0, 0
		if strings.Contains(kv[0], ":") {
			if _, err := fmt.Sscanf(kv[0], "%d:%d", &g, &id); err != nil {
				return nil, fmt.Errorf("malformed peer id %q (want [group:]id)", kv[0])
			}
		} else if _, err := fmt.Sscanf(kv[0], "%d", &id); err != nil {
			return nil, fmt.Errorf("malformed peer id %q", kv[0])
		}
		if g < 0 || g >= shards {
			return nil, fmt.Errorf("peer %q names group %d outside [0, %d)", part, g, shards)
		}
		out[g][transport.ReplicaAddr(ids.ReplicaID(id))] = kv[1]
	}
	return out, nil
}

func splitKeys(s string) []string {
	var out []string
	for _, k := range strings.Split(s, ",") {
		if k = strings.TrimSpace(k); k != "" {
			out = append(out, k)
		}
	}
	return out
}

// splitList splits a comma-separated list, trimming whitespace but
// keeping empty elements, so parallel lists (txput keys/values) stay
// positionally aligned.
func splitList(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}
