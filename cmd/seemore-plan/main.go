// Command seemore-plan is the Section-4 capacity planner: given a
// private cloud and the public cloud's failure statistics, it computes
// how many public nodes to rent so the hybrid network-size constraint
// N = 3m + 2c + 1 holds.
//
//	seemore-plan -s 2 -c 1 -alpha 0.3
//	→ rent 10 public nodes (the paper's worked example)
//
//	seemore-plan -s 2 -c 1 -alpha 0.2 -beta 0.05   # Equation 3
//	seemore-plan -s 2 -c 1 -max-byz 1              # cluster-bound variant
//
// With -split, -merge or -move the command instead dry-runs an elastic
// reconfiguration: it bootstraps the epoch-1 placement for -shards
// owner groups (plus -spares provisioned spares), applies the commands
// in order, and prints every epoch-stamped placement along the way —
// including the pending migration each data-moving command leaves for
// the controller, and the map that survives once the handoff commits.
// Nothing is deployed; this is the planning half of the live
// `placement.Controller` path.
//
//	seemore-plan -shards 2 -spares 1 -replicas 6 -split 0:2
//	seemore-plan -shards 2 -merge 1:0
//	seemore-plan -shards 2 -spares 1 -move 0x4000000000000000-0x8000000000000000:2
//	seemore-plan -shards 1 -set-replicas 0:7
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/placement"
	"repro/internal/shard"
)

func main() {
	var (
		s        = flag.Int("s", 2, "private cloud size S")
		c        = flag.Int("c", 1, "crash bound c in the private cloud")
		alpha    = flag.Float64("alpha", -1, "malicious ratio α = m/P of the public cloud (uniform model)")
		beta     = flag.Float64("beta", 0, "crash ratio β of the public cloud (uniform model, optional)")
		maxByz   = flag.Int("max-byz", -1, "max concurrent Byzantine failures M in the rented cluster (bound model)")
		maxCrash = flag.Int("max-crash", 0, "max concurrent crash failures C in the rented cluster (bound model)")
		shards   = flag.Int("shards", 1, "consensus groups to partition the keyspace across (each group is one full hybrid cluster)")
		spares   = flag.Int("spares", 0, "spare groups provisioned beyond -shards (dry-run placement)")
		replicas = flag.Int("replicas", 6, "replicas per group for the dry-run placement (the worked example's n)")
		splitFl  = flag.String("split", "", "dry-run a range split: from:to[@0xHASH] (groups; default boundary is the range midpoint)")
		mergeFl  = flag.String("merge", "", "dry-run a range merge: from:into (groups; from returns to the spare pool)")
		moveFl   = flag.String("move", "", "dry-run an explicit range move: 0xLO-0xHI:to")
		setRepFl = flag.String("set-replicas", "", "dry-run a membership change: group:count")
	)
	flag.Parse()

	if *splitFl != "" || *mergeFl != "" || *moveFl != "" || *setRepFl != "" {
		if err := planPlacement(*shards, *spares, *replicas, *splitFl, *mergeFl, *moveFl, *setRepFl); err != nil {
			fmt.Fprintf(os.Stderr, "placement plan: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var (
		p     int
		err   error
		model string
	)
	switch {
	case *alpha >= 0 && *beta > 0:
		p, err = config.PublicNodesUniformMixed(*s, *c, *alpha, *beta)
		model = fmt.Sprintf("uniform model, α=%.3f β=%.3f (Equation 3)", *alpha, *beta)
	case *alpha >= 0:
		p, err = config.PublicNodesUniform(*s, *c, *alpha)
		model = fmt.Sprintf("uniform model, α=%.3f (Equation 2)", *alpha)
	case *maxByz >= 0 && *maxCrash > 0:
		p, err = config.PublicNodesBoundedMixed(*s, *c, *maxByz, *maxCrash)
		model = fmt.Sprintf("bound model, M=%d C=%d", *maxByz, *maxCrash)
	case *maxByz >= 0:
		p, err = config.PublicNodesBounded(*s, *c, *maxByz)
		model = fmt.Sprintf("bound model, M=%d", *maxByz)
	default:
		fmt.Fprintln(os.Stderr, "specify -alpha (uniform failure model) or -max-byz (cluster bound model)")
		flag.Usage()
		os.Exit(2)
	}
	report(p, err, *s, *c, model)
	if err == nil && *shards > 1 {
		reportShards(*s+p, *shards)
	}
}

// planPlacement is the elastic dry run: bootstrap the epoch-1 map,
// apply the requested reconfigurations in flag order, and print each
// epoch-stamped successor. Data-moving commands also print the map the
// controller would commit once the handoff finishes, because at most
// one migration may be pending — the next command applies to that
// retired map, exactly as it would against the live meta group.
func planPlacement(shards, spares, replicas int, split, merge, move, setRep string) error {
	m, err := placement.Bootstrap(shards, shards+spares, replicas)
	if err != nil {
		return err
	}
	fmt.Printf("bootstrap:\n%s", placement.Describe(m))
	var cmds []placement.Cmd
	for _, f := range []struct {
		raw   string
		parse func(string) (placement.Cmd, error)
	}{
		{split, parseSplitCmd},
		{merge, parseMergeCmd},
		{move, parseMoveCmd},
		{setRep, parseSetReplicasCmd},
	} {
		if f.raw == "" {
			continue
		}
		c, err := f.parse(f.raw)
		if err != nil {
			return err
		}
		cmds = append(cmds, c)
	}
	for _, c := range cmds {
		next, err := placement.Plan(m, c)
		if err != nil {
			return fmt.Errorf("%v: %w", c.Kind, err)
		}
		fmt.Printf("\nafter %v:\n%s", c.Kind, placement.Describe(next))
		if p := next.Pending; p != nil {
			done, err := next.CompletePending(p.Epoch)
			if err != nil {
				return err
			}
			fmt.Printf("once the controller finishes the %s handoff (group %d -> %d):\n%s",
				p.Range, int(p.From), int(p.To), placement.Describe(done))
			next = done
		}
		m = next
	}
	return nil
}

// parseSplitCmd parses "from:to" or "from:to@0xHASH".
func parseSplitCmd(s string) (placement.Cmd, error) {
	spec, atStr, hasAt := strings.Cut(s, "@")
	from, to, err := parseGroupPair(spec)
	if err != nil {
		return placement.Cmd{}, fmt.Errorf("-split %q: %w", s, err)
	}
	var at uint64
	if hasAt {
		if at, err = strconv.ParseUint(atStr, 0, 64); err != nil {
			return placement.Cmd{}, fmt.Errorf("-split %q: bad boundary: %w", s, err)
		}
	}
	return placement.Cmd{Kind: placement.CmdSplit, Group: ids.GroupID(from), To: ids.GroupID(to), At: at}, nil
}

// parseMergeCmd parses "from:into".
func parseMergeCmd(s string) (placement.Cmd, error) {
	from, into, err := parseGroupPair(s)
	if err != nil {
		return placement.Cmd{}, fmt.Errorf("-merge %q: %w", s, err)
	}
	return placement.Cmd{Kind: placement.CmdMerge, Group: ids.GroupID(from), To: ids.GroupID(into)}, nil
}

// parseMoveCmd parses "0xLO-0xHI:to".
func parseMoveCmd(s string) (placement.Cmd, error) {
	rangeStr, toStr, ok := strings.Cut(s, ":")
	if !ok {
		return placement.Cmd{}, fmt.Errorf("-move %q: want 0xLO-0xHI:to", s)
	}
	loStr, hiStr, ok := strings.Cut(rangeStr, "-")
	if !ok {
		return placement.Cmd{}, fmt.Errorf("-move %q: want 0xLO-0xHI:to", s)
	}
	lo, err := strconv.ParseUint(loStr, 0, 64)
	if err != nil {
		return placement.Cmd{}, fmt.Errorf("-move %q: bad lo: %w", s, err)
	}
	hi, err := strconv.ParseUint(hiStr, 0, 64)
	if err != nil {
		return placement.Cmd{}, fmt.Errorf("-move %q: bad hi: %w", s, err)
	}
	to, err := strconv.Atoi(toStr)
	if err != nil || to < 0 {
		return placement.Cmd{}, fmt.Errorf("-move %q: bad target group %q", s, toStr)
	}
	return placement.Cmd{Kind: placement.CmdMove, Range: placement.Range{Lo: lo, Hi: hi}, To: ids.GroupID(to)}, nil
}

// parseSetReplicasCmd parses "group:count".
func parseSetReplicasCmd(s string) (placement.Cmd, error) {
	g, n, err := parseGroupPair(s)
	if err != nil {
		return placement.Cmd{}, fmt.Errorf("-set-replicas %q: %w", s, err)
	}
	return placement.Cmd{Kind: placement.CmdSetReplicas, Group: ids.GroupID(g), Replicas: n}, nil
}

// parseGroupPair parses "a:b" into two non-negative ints.
func parseGroupPair(s string) (int, int, error) {
	aStr, bStr, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want a:b")
	}
	a, err := strconv.Atoi(aStr)
	if err != nil || a < 0 {
		return 0, 0, fmt.Errorf("bad %q", aStr)
	}
	b, err := strconv.Atoi(bStr)
	if err != nil || b < 0 {
		return 0, 0, fmt.Errorf("bad %q", bStr)
	}
	return a, b, nil
}

// reportShards prints the per-shard placement of a sharded deployment:
// every group is one full hybrid cluster of n nodes, laid out over
// contiguous global replica indices, owning one contiguous slice of the
// hashed keyspace.
func reportShards(n, shards int) {
	ps, err := shard.Placements(config.Sharding{Shards: shards, ReplicasPerShard: n})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sharding: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("sharded deployment: %d groups × %d nodes = %d replicas total\n", shards, n, shards*n)
	for _, pl := range ps {
		hi := fmt.Sprintf("%#016x", pl.HashHi)
		if pl.HashHi == 0 {
			hi = "2^64" // the last range is closed by the top of the hash space
		}
		fmt.Printf("  shard %d: replicas %d..%d, key hashes [%#016x, %s)\n",
			int(pl.Group), pl.LoID, pl.HiID-1, pl.HashLo, hi)
	}
	fmt.Printf("  run each group as its own cluster (cmd/seemore -shards %d -shard-of <g>); clients route with -shards %d\n",
		shards, shards)
}

func report(p int, err error, s, c int, model string) {
	fmt.Printf("private cloud: S=%d, tolerating c=%d crashes\n", s, c)
	fmt.Printf("public cloud model: %s\n", model)
	switch {
	case errors.Is(err, config.ErrNoRentalNeeded):
		fmt.Printf("→ no rental needed: S ≥ 2c+1 = %d, run a crash fault-tolerant protocol locally\n", 2*c+1)
	case errors.Is(err, config.ErrPrivateCloudUseless):
		fmt.Println("→ the private cloud contributes no healthy majority (S ≤ c); rent everything and run plain BFT")
	case errors.Is(err, config.ErrPublicCloudTooFaulty):
		fmt.Println("→ infeasible: the public cloud's failure ratio is too high (α ≥ 1/3); choose another provider")
	case err != nil:
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	default:
		fmt.Printf("→ rent P = %d public nodes (network size N = %d)\n", p, s+p)
		if mb, merr := ids.NewMembership(s, p, c, estimateByz(p, model)); merr == nil {
			fmt.Printf("  quorums: Lion %d, Dog/Peacock %d (proxies: %d)\n",
				mb.AgreementQuorum(ids.Lion), mb.AgreementQuorum(ids.Dog), mb.ProxyCount())
		}
	}
}

// estimateByz derives the m implied by the model for quorum reporting;
// a rough helper, not part of the protocol.
func estimateByz(p int, model string) int {
	var alpha float64
	if _, err := fmt.Sscanf(model, "uniform model, α=%f", &alpha); err == nil {
		return int(alpha * float64(p))
	}
	var m int
	if _, err := fmt.Sscanf(model, "bound model, M=%d", &m); err == nil {
		return m
	}
	return 0
}
