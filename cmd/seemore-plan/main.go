// Command seemore-plan is the Section-4 capacity planner: given a
// private cloud and the public cloud's failure statistics, it computes
// how many public nodes to rent so the hybrid network-size constraint
// N = 3m + 2c + 1 holds.
//
//	seemore-plan -s 2 -c 1 -alpha 0.3
//	→ rent 10 public nodes (the paper's worked example)
//
//	seemore-plan -s 2 -c 1 -alpha 0.2 -beta 0.05   # Equation 3
//	seemore-plan -s 2 -c 1 -max-byz 1              # cluster-bound variant
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/config"
	"repro/internal/ids"
	"repro/internal/shard"
)

func main() {
	var (
		s        = flag.Int("s", 2, "private cloud size S")
		c        = flag.Int("c", 1, "crash bound c in the private cloud")
		alpha    = flag.Float64("alpha", -1, "malicious ratio α = m/P of the public cloud (uniform model)")
		beta     = flag.Float64("beta", 0, "crash ratio β of the public cloud (uniform model, optional)")
		maxByz   = flag.Int("max-byz", -1, "max concurrent Byzantine failures M in the rented cluster (bound model)")
		maxCrash = flag.Int("max-crash", 0, "max concurrent crash failures C in the rented cluster (bound model)")
		shards   = flag.Int("shards", 1, "consensus groups to partition the keyspace across (each group is one full hybrid cluster)")
	)
	flag.Parse()

	var (
		p     int
		err   error
		model string
	)
	switch {
	case *alpha >= 0 && *beta > 0:
		p, err = config.PublicNodesUniformMixed(*s, *c, *alpha, *beta)
		model = fmt.Sprintf("uniform model, α=%.3f β=%.3f (Equation 3)", *alpha, *beta)
	case *alpha >= 0:
		p, err = config.PublicNodesUniform(*s, *c, *alpha)
		model = fmt.Sprintf("uniform model, α=%.3f (Equation 2)", *alpha)
	case *maxByz >= 0 && *maxCrash > 0:
		p, err = config.PublicNodesBoundedMixed(*s, *c, *maxByz, *maxCrash)
		model = fmt.Sprintf("bound model, M=%d C=%d", *maxByz, *maxCrash)
	case *maxByz >= 0:
		p, err = config.PublicNodesBounded(*s, *c, *maxByz)
		model = fmt.Sprintf("bound model, M=%d", *maxByz)
	default:
		fmt.Fprintln(os.Stderr, "specify -alpha (uniform failure model) or -max-byz (cluster bound model)")
		flag.Usage()
		os.Exit(2)
	}
	report(p, err, *s, *c, model)
	if err == nil && *shards > 1 {
		reportShards(*s+p, *shards)
	}
}

// reportShards prints the per-shard placement of a sharded deployment:
// every group is one full hybrid cluster of n nodes, laid out over
// contiguous global replica indices, owning one contiguous slice of the
// hashed keyspace.
func reportShards(n, shards int) {
	ps, err := shard.Placements(config.Sharding{Shards: shards, ReplicasPerShard: n})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sharding: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("sharded deployment: %d groups × %d nodes = %d replicas total\n", shards, n, shards*n)
	for _, pl := range ps {
		hi := fmt.Sprintf("%#016x", pl.HashHi)
		if pl.HashHi == 0 {
			hi = "2^64" // the last range is closed by the top of the hash space
		}
		fmt.Printf("  shard %d: replicas %d..%d, key hashes [%#016x, %s)\n",
			int(pl.Group), pl.LoID, pl.HiID-1, pl.HashLo, hi)
	}
	fmt.Printf("  run each group as its own cluster (cmd/seemore -shards %d -shard-of <g>); clients route with -shards %d\n",
		shards, shards)
}

func report(p int, err error, s, c int, model string) {
	fmt.Printf("private cloud: S=%d, tolerating c=%d crashes\n", s, c)
	fmt.Printf("public cloud model: %s\n", model)
	switch {
	case errors.Is(err, config.ErrNoRentalNeeded):
		fmt.Printf("→ no rental needed: S ≥ 2c+1 = %d, run a crash fault-tolerant protocol locally\n", 2*c+1)
	case errors.Is(err, config.ErrPrivateCloudUseless):
		fmt.Println("→ the private cloud contributes no healthy majority (S ≤ c); rent everything and run plain BFT")
	case errors.Is(err, config.ErrPublicCloudTooFaulty):
		fmt.Println("→ infeasible: the public cloud's failure ratio is too high (α ≥ 1/3); choose another provider")
	case err != nil:
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		os.Exit(1)
	default:
		fmt.Printf("→ rent P = %d public nodes (network size N = %d)\n", p, s+p)
		if mb, merr := ids.NewMembership(s, p, c, estimateByz(p, model)); merr == nil {
			fmt.Printf("  quorums: Lion %d, Dog/Peacock %d (proxies: %d)\n",
				mb.AgreementQuorum(ids.Lion), mb.AgreementQuorum(ids.Dog), mb.ProxyCount())
		}
	}
}

// estimateByz derives the m implied by the model for quorum reporting;
// a rough helper, not part of the protocol.
func estimateByz(p int, model string) int {
	var alpha float64
	if _, err := fmt.Sscanf(model, "uniform model, α=%f", &alpha); err == nil {
		return int(alpha * float64(p))
	}
	var m int
	if _, err := fmt.Sscanf(model, "bound model, M=%d", &m); err == nil {
		return m
	}
	return 0
}
