// Command seemore runs one SeeMoRe replica over real TCP, for
// multi-process (or multi-machine) deployments.
//
// Example 6-node hybrid cluster (S=2, P=4, c=1, m=1) on one machine:
//
//	for i in 0 1 2 3 4 5; do
//	  seemore -id $i -s 2 -p 4 -c 1 -m 1 \
//	    -listen 127.0.0.1:$((7000+i)) \
//	    -peers 0=127.0.0.1:7000,1=127.0.0.1:7001,2=127.0.0.1:7002,3=127.0.0.1:7003,4=127.0.0.1:7004,5=127.0.0.1:7005 &
//	done
//
// Then issue requests with cmd/seemore-client. All nodes must share
// -seed (deterministic key derivation stands in for key distribution).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/ids"
	"repro/internal/statemachine"
	"repro/internal/storage"
	"repro/internal/transport"
)

func main() {
	var (
		id       = flag.Int("id", 0, "replica id in [0, S+P)")
		s        = flag.Int("s", 2, "private cloud size S")
		p        = flag.Int("p", 4, "public cloud size P")
		c        = flag.Int("c", 1, "crash bound c (private cloud)")
		m        = flag.Int("m", 1, "Byzantine bound m (public cloud)")
		mode     = flag.String("mode", "lion", "initial mode: lion, dog, peacock")
		listen   = flag.String("listen", "127.0.0.1:7000", "listen address")
		peers    = flag.String("peers", "", "comma-separated id=host:port peer list")
		seed     = flag.Int64("seed", 1, "shared key-derivation seed")
		clients  = flag.Int64("clients", 64, "number of client identities in the keyring")
		suite    = flag.String("suite", "ed25519", "signature suite: ed25519, hmac, none")
		batch    = flag.Int("batch", 1, "max requests per consensus slot (1 disables batching)")
		batchTmo = flag.Duration("batch-timeout", config.DefaultBatchTimeout, "partial-batch flush deadline")
		pipeline = flag.Int("pipeline", 0, "max consensus slots the primary keeps in flight (0 disables pipelining)")
		lease    = flag.Duration("lease", 0, "leader lease duration for local leased reads (0 disables; trusted modes only)")
		leaseSkw = flag.Duration("lease-skew", 0, "assumed clock-skew bound backing the lease safety margin")
		dataDir  = flag.String("data-dir", "", "durable storage directory (WAL + snapshots); empty runs fully in memory")
		fsyncEv  = flag.Int("fsync-every", 1, "fsync the WAL every N appends (1: every append; >1 trades a bounded power-failure window for throughput)")
		shards   = flag.Int("shards", 1, "total consensus groups in the sharded deployment this replica belongs to")
		shardOf  = flag.Int("shard-of", 0, "which group this replica serves, in [0, shards)")
	)
	flag.Parse()

	sh := config.Sharding{Shards: *shards}.Normalized()
	if err := sh.Validate(); err != nil {
		log.Fatalf("sharding: %v", err)
	}
	group := ids.GroupID(*shardOf)
	if !group.Valid() || int(group) >= sh.Shards {
		log.Fatalf("sharding: -shard-of %d outside [0, %d)", *shardOf, sh.Shards)
	}

	mb, err := ids.NewMembership(*s, *p, *c, *m)
	if err != nil {
		log.Fatalf("membership: %v", err)
	}
	md, err := parseMode(*mode)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := config.NewCluster(mb, md, config.DefaultTiming())
	if err != nil {
		log.Fatalf("cluster config: %v", err)
	}
	cl.Batching = config.Batching{BatchSize: *batch, BatchTimeout: *batchTmo}
	if err := cl.Batching.Validate(); err != nil {
		log.Fatalf("batching: %v", err)
	}
	cl.Pipelining = config.Pipelining{Depth: *pipeline}
	if err := cl.Pipelining.Validate(); err != nil {
		log.Fatalf("pipelining: %v", err)
	}
	cl.Leases = config.Leases{Duration: *lease, MaxClockSkew: *leaseSkw}
	if err := cl.Leases.Validate(cl.Timing); err != nil {
		log.Fatalf("leases: %v", err)
	}

	// Each consensus group of a sharded deployment is its own TCP
	// cluster (own peer list, own ports) and its own durability domain:
	// one host directory can hold several groups' replicas without
	// collisions.
	dir := *dataDir
	if dir != "" && sh.Enabled() {
		dir = filepath.Join(dir, fmt.Sprintf("g%d", group))
	}
	cl.Durability = config.Durability{Dir: dir, FsyncEvery: *fsyncEv}
	if err := cl.Durability.Validate(); err != nil {
		log.Fatalf("durability: %v", err)
	}

	peerMap, err := parsePeers(*peers)
	if err != nil {
		log.Fatalf("peers: %v", err)
	}
	node, err := transport.NewTCPNode(transport.ReplicaAddr(ids.ReplicaID(*id)), *listen, peerMap)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}

	var store storage.Store
	if cl.Durability.Enabled() {
		store, err = storage.Open(cl.Durability.Dir, storage.DiskOptions{FsyncEvery: cl.Durability.FsyncEvery})
		if err != nil {
			log.Fatalf("storage: %v", err)
		}
	}

	replica, err := core.NewReplica(core.Options{
		ID:           ids.ReplicaID(*id),
		Cluster:      cl,
		Suite:        pickSuite(*suite, *seed, mb.N(), *clients),
		Network:      transport.Single(node),
		StateMachine: statemachine.NewKVStore(),
		Storage:      store, // the replica recovers from it and owns it
	})
	if err != nil {
		log.Fatalf("replica: %v", err)
	}
	replica.Start()
	durable := "in-memory"
	if store != nil {
		durable = "data-dir " + dir
	}
	shardInfo := ""
	if sh.Enabled() {
		shardInfo = fmt.Sprintf(", shard %d/%d", group, sh.Shards)
	}
	log.Printf("seemore replica %d up: %v, mode %s%s, listening on %s (%s)", *id, mb, md, shardInfo, node.ListenAddr(), durable)

	// Graceful shutdown: stop the engine first (no new proposals or
	// votes; the replica flushes and closes its WAL), then the
	// transport. A second signal aborts immediately for operators who
	// cannot wait.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	first := <-sig
	log.Printf("%s: shutting down gracefully (signal again to force)", first)
	go func() {
		<-sig
		log.Printf("forced exit")
		os.Exit(1)
	}()
	replica.Stop() // stops proposing, syncs and closes the durable store
	node.Close()   // drains and closes every connection
	log.Printf("shutdown complete")
}

func parseMode(s string) (ids.Mode, error) {
	switch strings.ToLower(s) {
	case "lion":
		return ids.Lion, nil
	case "dog":
		return ids.Dog, nil
	case "peacock":
		return ids.Peacock, nil
	default:
		return 0, fmt.Errorf("unknown mode %q (lion, dog, peacock)", s)
	}
}

func parsePeers(s string) (map[transport.Addr]string, error) {
	out := make(map[transport.Addr]string)
	if s == "" {
		return out, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("malformed peer entry %q (want id=host:port)", part)
		}
		var id int
		if _, err := fmt.Sscanf(kv[0], "%d", &id); err != nil {
			return nil, fmt.Errorf("malformed peer id %q", kv[0])
		}
		out[transport.ReplicaAddr(ids.ReplicaID(id))] = kv[1]
	}
	return out, nil
}

func pickSuite(name string, seed int64, replicas int, clients int64) crypto.Suite {
	switch strings.ToLower(name) {
	case "ed25519":
		return crypto.NewEd25519Suite(seed, replicas, clients)
	case "hmac":
		return crypto.NewHMACSuite(seed, replicas, clients)
	case "none":
		return crypto.NoopSuite{}
	default:
		log.Fatalf("unknown suite %q", name)
		return nil
	}
}
