# Makefile — the same entry points CI uses, so humans and the pipeline
# never drift apart. `make help` lists targets.

GO      ?= go
PKGS    ?= ./...
COVER   ?= coverage.out

.PHONY: all build test race race-client bench bench-json bench-hotpath profile fuzz sim-explore fmt fmt-check vet doclint seemore-vet lint lint-fix cover clean help

SIM_SEEDS ?= 200

all: build test ## build everything, then run the tests

build: ## compile every package and command
	$(GO) build $(PKGS)

test: ## run the full test suite
	$(GO) test $(PKGS)

race: ## run the test suite under the race detector
	$(GO) test -race $(PKGS)

race-client: ## race-detect the client/coordination layers (fast iteration gate)
	$(GO) test -race ./internal/client ./internal/cluster ./internal/txn

bench: ## regenerate the paper's figures/tables via the root benchmarks
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

bench-json: ## machine-readable sweeps → BENCH_pipeline/shard/txn/readmix/reshard.json (CI artifacts)
	$(GO) run ./cmd/seemore-bench -exp ablation-pipeline \
		-measure 200ms -warmup 50ms -clients 1,8 -json BENCH_pipeline.json
	$(GO) run ./cmd/seemore-bench -exp ablation-shard \
		-measure 300ms -warmup 80ms -shards 1,2,4 -shard-clients 48 -json BENCH_shard.json
	$(GO) run ./cmd/seemore-bench -exp ablation-txn \
		-measure 300ms -warmup 80ms -shards 1,2,4 -shard-clients 32 -json BENCH_txn.json
	$(GO) run ./cmd/seemore-bench -exp ablation-readmix \
		-measure 300ms -warmup 80ms -shard-clients 48 -json BENCH_readmix.json
	$(GO) run ./cmd/seemore-bench -exp ablation-reshard \
		-measure 300ms -warmup 80ms -shard-clients 24 -json BENCH_reshard.json

bench-hotpath: ## hot-path microbenchmarks (pooled codec / batch verify / WAL group commit) → BENCH_hotpath.json
	$(GO) run ./cmd/seemore-bench -exp hotpath -json BENCH_hotpath.json

profile: ## CPU+heap profile one pipeline sweep → cpu.pprof / mem.pprof (inspect with `go tool pprof`)
	$(GO) run ./cmd/seemore-bench -exp ablation-pipeline \
		-measure 200ms -warmup 50ms -clients 8 \
		-cpuprofile cpu.pprof -memprofile mem.pprof

fuzz: ## fuzz the untrusted-input decoders briefly (wire codec + KV state machine + placement map + linearizability checker)
	$(GO) test -run='^$$' -fuzz=FuzzDecode$$ -fuzztime=15s ./internal/message
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRequest -fuzztime=5s ./internal/message
	$(GO) test -run='^$$' -fuzz=FuzzKVApply -fuzztime=10s ./internal/statemachine
	$(GO) test -run='^$$' -fuzz=FuzzPlacement -fuzztime=10s ./internal/placement
	$(GO) test -run='^$$' -fuzz=FuzzLinearizable -fuzztime=15s ./internal/sim

sim-explore: ## sweep SIM_SEEDS deterministic-simulation seeds (failures print a one-line reproduction)
	$(GO) test ./internal/sim -run TestSimSeed -sim.seeds $(SIM_SEEDS) -timeout 60m

fmt: ## gofmt all source in place
	gofmt -w .

fmt-check: ## fail if any file needs gofmt (CI gate)
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet: ## stock go vet
	$(GO) vet $(PKGS)

seemore-vet: ## the custom invariant analyzers (clockcheck, releasecheck, simdet, errsticky)
	$(GO) run ./cmd/seemore-vet $(PKGS)

lint: fmt-check vet doclint seemore-vet ## the full static-analysis umbrella (CI lint gate)
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck $(PKGS)"; staticcheck $(PKGS); \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck $(PKGS)"; govulncheck $(PKGS); \
	else echo "govulncheck not installed; skipping (CI runs it)"; fi

lint-fix: fmt ## apply the automatic fixes (gofmt), then re-run the lint gate
	$(MAKE) lint

doclint: ## fail if any internal package lacks a package comment (godoc gate)
	@missing=0; for d in internal/*/; do \
		pkg=$$(basename $$d); \
		grep -qs "^// Package $$pkg " $$d*.go || { echo "missing package doc: $$d"; missing=1; }; \
	done; \
	for d in ./internal/core ./internal/replica ./internal/message ./internal/config; do \
		$(GO) doc $$d >/dev/null || missing=1; \
	done; \
	exit $$missing

cover: ## run tests with coverage and print the summary
	$(GO) test -coverprofile=$(COVER) $(PKGS)
	$(GO) tool cover -func=$(COVER) | tail -1

clean: ## remove build artifacts
	rm -f $(COVER) cpu.pprof mem.pprof
	$(GO) clean

help: ## show this help
	@grep -E '^[a-z-]+:.*##' $(MAKEFILE_LIST) | \
		awk -F':.*## ' '{printf "  %-10s %s\n", $$1, $$2}'
